package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/url"
	"sync"
	"time"

	"kamel/internal/geo"
	"kamel/internal/obs"
	"kamel/internal/pyramid"
)

// Anti-entropy: pull-based replica reconciliation.
//
// With N-way replica groups, a restarted or lagging replica can hold older
// models than its group peers — train fan-out is best-effort, and a node
// that was down while its group trained simply missed those writes.  The
// Syncer closes that gap without operator action: a background loop on each
// node periodically reads every peer's replication manifest (the per-model
// cell/slot/version list derived from the pyramid's manifest machinery),
// and pulls any model where
//
//   - the model's shard cell is replicated on BOTH this node and that peer
//     under the current map (so nodes never hoard models they don't serve),
//   - and the peer's per-slot model version is strictly newer than the local
//     one.  Model versions are bumped once per rebuild and carried verbatim
//     by replication (Repo.Adopt), so they are comparable across nodes —
//     unlike manifest generations, which count local commits.
//
// Pulled payloads are installed through the local repository's single-writer
// commit path, so one sweep converges a stale replica to its group's newest
// versions.  The sweep is pull-based and idempotent: a second sweep finds
// version equality and transfers nothing.

// ReplicaModel is one model slot in a node's replication manifest.
type ReplicaModel struct {
	Key  pyramid.CellKey   `json:"key"`
	Slot string            `json:"slot"`
	File string            `json:"file"`
	Meta pyramid.ModelMeta `json:"meta"`
}

// ManifestDoc is a node's replication manifest: everything a replica peer
// needs to decide what to pull — the pyramid geometry (to place each model's
// cell in space), the projection origin (to map it to the shard grid), and
// the per-model version list.
type ManifestDoc struct {
	Shard      string         `json:"shard"`
	Generation int            `json:"generation"`
	OriginLat  float64        `json:"origin_lat"`
	OriginLng  float64        `json:"origin_lng"`
	Config     pyramid.Config `json:"config"`
	Models     []ReplicaModel `json:"models"`

	// TokenizerSpecHash is the canonical hash of the node's frozen tokenizer
	// spec.  Models are expressed in their tokenizer's token space, so two
	// nodes may exchange models only when their hashes agree; anti-entropy
	// refuses mismatched peers outright.  Empty on nodes predating specs —
	// treated as compatible for rolling upgrades.
	TokenizerSpecHash string `json:"tokenizer_spec_hash,omitempty"`
}

// IncomingModel is one model pulled from a peer, ready to install: identity,
// the peer's metadata (version included, verbatim), and the encoded payload.
type IncomingModel struct {
	Key     pyramid.CellKey
	Slot    string
	Meta    pyramid.ModelMeta
	Payload []byte
}

// ReplicaStore is the local node's model repository as the syncer sees it.
// The serving layer adapts the core system to it.
type ReplicaStore interface {
	// ManifestDoc snapshots the local replication manifest; ok is false when
	// the node has no repository yet (nothing to reconcile against).
	ManifestDoc() (ManifestDoc, bool)
	// ModelPayload returns the raw encoded payload of a committed model file.
	ModelPayload(file string) ([]byte, error)
	// InstallModels decodes and adopts pulled models under the repository's
	// single-writer discipline, returning how many were installed.
	InstallModels(models []IncomingModel) (int, error)
}

// SyncerOptions tune the anti-entropy loop.
type SyncerOptions struct {
	// Interval is the sweep period for Run (default 30s).
	Interval time.Duration
	// Logger receives sweep warnings; nil uses slog.Default().
	Logger *slog.Logger
	// Registry receives the kamel_antientropy_* metrics; nil keeps them
	// private.
	Registry *obs.Registry
}

// SweepStats is the outcome of one anti-entropy sweep.
type SweepStats struct {
	PeersChecked   int `json:"peers_checked"`
	ModelsCompared int `json:"models_compared"`
	Pulled         int `json:"pulled"`
	Errors         int `json:"errors"`
	// TokenizerRejects counts peers skipped because their tokenizer spec
	// hash differs from ours — their models live in a different token space.
	TokenizerRejects int `json:"tokenizer_rejects"`
}

// SyncStats is the syncer's cumulative accounting for /v1/cluster.
type SyncStats struct {
	Sweeps     int64      `json:"sweeps"`
	Pulled     int64      `json:"models_pulled"`
	PullErrors int64      `json:"pull_errors"`
	LastSweep  SweepStats `json:"last_sweep"`
}

// Syncer runs the pull-based anti-entropy reconciliation for one node.
type Syncer struct {
	rt    *Router
	store ReplicaStore
	opts  SyncerOptions

	sweeps     *obs.Counter
	pulls      *obs.Counter
	pullErrs   *obs.Counter
	tokRejects *obs.Counter

	mu   sync.Mutex
	last SweepStats
}

// NewSyncer builds a syncer over the node's router and local model store.
func NewSyncer(rt *Router, store ReplicaStore, opts SyncerOptions) *Syncer {
	if opts.Interval <= 0 {
		opts.Interval = 30 * time.Second
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	if opts.Registry == nil {
		opts.Registry = obs.NewRegistry()
	}
	s := &Syncer{rt: rt, store: store, opts: opts}
	reg := opts.Registry
	s.sweeps = reg.Counter("kamel_antientropy_sweeps_total",
		"Anti-entropy sweeps completed.")
	s.pulls = reg.Counter("kamel_antientropy_pulls_total",
		"Models pulled from replica peers by anti-entropy.")
	s.pullErrs = reg.Counter("kamel_antientropy_pull_errors_total",
		"Anti-entropy manifest reads or model pulls that failed.")
	s.tokRejects = reg.Counter("kamel_antientropy_tokenizer_rejects_total",
		"Peers refused by anti-entropy because their tokenizer spec hash differs.")
	return s
}

// Run sweeps every Interval until ctx is cancelled.  Run it in a goroutine.
func (s *Syncer) Run(ctx context.Context) {
	ticker := time.NewTicker(s.opts.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			s.SweepOnce(ctx)
		case <-ctx.Done():
			return
		}
	}
}

// Stats snapshots the syncer's cumulative accounting.
func (s *Syncer) Stats() SyncStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SyncStats{
		Sweeps:     s.sweeps.Value(),
		Pulled:     s.pulls.Value(),
		PullErrors: s.pullErrs.Value(),
		LastSweep:  s.last,
	}
}

// SweepOnce reconciles this node against every peer once and reports what it
// did.  Safe to call concurrently with Run only in the trivial sense that
// installs serialize in the store; operationally it is one node's single
// background actor.
func (s *Syncer) SweepOnce(ctx context.Context) SweepStats {
	var stats SweepStats
	defer func() {
		s.sweeps.Inc()
		s.mu.Lock()
		s.last = stats
		s.mu.Unlock()
	}()

	// Give the sweep's GETs a request ID and trace identity so background sync
	// traffic is attributable in peer logs and trace stores — otherwise a
	// manifest read shows up at the peer as anonymous traffic.  Sweeps follow
	// head sampling only (they are never slow/error-retained at this end).
	if obs.RequestIDFrom(ctx) == "" {
		ctx = obs.ContextWithRequestID(ctx, "sync-"+obs.NewRequestID())
	}
	if _, ok := obs.TraceFrom(ctx).Context(); !ok {
		ctx = obs.With(ctx, obs.NewRootTrace(false), s.opts.Registry)
	}

	local, ok := s.store.ManifestDoc()
	if !ok {
		// Nothing local to reconcile against: a node bootstraps its region
		// through train traffic, not anti-entropy.
		return stats
	}
	type slotID struct {
		key  pyramid.CellKey
		slot string
	}
	localVer := make(map[slotID]int, len(local.Models))
	for _, m := range local.Models {
		localVer[slotID{m.Key, m.Slot}] = m.Meta.Version
	}

	self := s.rt.Self()
	for _, peerID := range s.rt.PeerIDs() {
		if ctx.Err() != nil {
			return stats
		}
		res, err := s.rt.Get(ctx, peerID, "/v1/cluster/manifest")
		if err != nil || res.Status != 200 {
			// Unreachable or non-replicating peer; the next sweep retries.
			continue
		}
		stats.PeersChecked++
		var doc ManifestDoc
		if err := json.Unmarshal(res.Body, &doc); err != nil {
			stats.Errors++
			s.pullErrs.Inc()
			continue
		}
		// Token-space compatibility gate: a peer whose frozen tokenizer spec
		// differs produced its models over a different token mapping — its
		// payloads would decode fine and serve garbage.  Refuse the peer.
		// Empty hashes (pre-spec nodes) pass, for rolling upgrades.
		if local.TokenizerSpecHash != "" && doc.TokenizerSpecHash != "" &&
			local.TokenizerSpecHash != doc.TokenizerSpecHash {
			stats.TokenizerRejects++
			s.tokRejects.Inc()
			s.opts.Logger.Warn("anti-entropy refused peer with mismatched tokenizer spec",
				"component", "cluster", "peer", peerID,
				"local_hash", local.TokenizerSpecHash, "peer_hash", doc.TokenizerSpecHash)
			continue
		}
		peerProj := geo.NewProjection(doc.OriginLat, doc.OriginLng)
		var pulls []IncomingModel
		for _, m := range doc.Models {
			stats.ModelsCompared++
			if m.File == "" {
				continue
			}
			id := slotID{m.Key, m.Slot}
			if localVer[id] >= m.Meta.Version {
				continue
			}
			// Replica responsibility check: the model's coverage center,
			// mapped through the PEER's projection (its pyramid lives in that
			// frame), must land in a shard cell replicated on both ends.
			center := doc.Config.CellRect(m.Key).Center()
			group, _, ok := s.rt.ReplicaGroup([]geo.Point{peerProj.ToLatLng(center)})
			if !ok || !containsID(group, self) || !containsID(group, peerID) {
				continue
			}
			pres, err := s.rt.Get(ctx, peerID, "/v1/cluster/model?file="+url.QueryEscape(m.File))
			if err != nil || pres.Status != 200 {
				stats.Errors++
				s.pullErrs.Inc()
				continue
			}
			pulls = append(pulls, IncomingModel{Key: m.Key, Slot: m.Slot, Meta: m.Meta, Payload: pres.Body})
		}
		if len(pulls) == 0 {
			continue
		}
		n, err := s.store.InstallModels(pulls)
		stats.Pulled += n
		s.pulls.Add(int64(n))
		if err != nil {
			stats.Errors++
			s.pullErrs.Inc()
			s.opts.Logger.Warn("anti-entropy install failed", "component", "cluster",
				"peer", peerID, "err", err.Error())
		}
		// Adopted versions are local now; don't re-pull them from a later
		// peer in the same sweep.
		for i := 0; i < n; i++ {
			localVer[slotID{pulls[i].Key, pulls[i].Slot}] = pulls[i].Meta.Version
		}
		s.opts.Logger.Info("anti-entropy pulled models", "component", "cluster",
			"peer", peerID, "models", n)
	}
	return stats
}

func containsID(ids []string, id string) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// String renders sweep stats for logs.
func (st SweepStats) String() string {
	return fmt.Sprintf("peers=%d compared=%d pulled=%d errors=%d tokenizer_rejects=%d",
		st.PeersChecked, st.ModelsCompared, st.Pulled, st.Errors, st.TokenizerRejects)
}

package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"kamel/internal/geo"
	"kamel/internal/grid"
	"kamel/internal/obs"
)

// HeaderForwarded marks a request as already forwarded once.  A node that
// receives it serves locally no matter what the shard map says, so routing
// terminates after one hop even if two nodes momentarily disagree on the map.
const HeaderForwarded = "X-Kamel-Forwarded"

// ErrPeerUnavailable wraps the last transport or server error after the
// retry budget for a peer is exhausted (or the peer was known-dead and the
// call failed fast).  The serving layer keys its degradation ladder off it.
var ErrPeerUnavailable = errors.New("cluster: peer unavailable")

// ErrPeerBusy marks a peer that is alive but actively refusing the work
// right now — 429 from its admission batcher or 409 (not trained).  It is
// deliberately NOT retried or hedged: retrying into an overloaded peer's
// shedder is a retry storm, and a peer that refused once will refuse the
// identical request again.  The peer stays healthy; the caller's degradation
// ladder moves on (next replica, then the linear fallback).
var ErrPeerBusy = errors.New("cluster: peer busy")

// ErrStaleMap is returned by Reload for a map whose generation is below the
// one currently routing.
var ErrStaleMap = errors.New("cluster: stale shard map generation")

// ErrUnknownShard is returned by Forward for a shard id absent from the map.
var ErrUnknownShard = errors.New("cluster: unknown shard")

// Options tune a Router.  The zero value of each field selects the default
// noted on it.
type Options struct {
	// Self is the shard id this process serves; required, and must appear in
	// every map the router is given.
	Self string
	// ForwardTimeout bounds one forwarded attempt (default 10s).
	ForwardTimeout time.Duration
	// Retries is how many additional attempts follow a failed forward
	// (default 1; negative disables retries).
	Retries int
	// RetryBackoff is the pause before the first retry, doubled per retry
	// (default 50ms).
	RetryBackoff time.Duration
	// HedgeAfter, when positive, launches a second identical request if the
	// first has not answered within this duration, and takes whichever
	// finishes first — the classic tail-latency hedge.  0 disables.
	HedgeAfter time.Duration
	// ProbeInterval is the /readyz health-probe period (default 5s).
	ProbeInterval time.Duration
	// Transport overrides the forwarding HTTP transport (tests inject
	// failure modes here); nil uses http.DefaultTransport.
	Transport http.RoundTripper
	// Logger receives forward/probe warnings; nil uses slog.Default().
	Logger *slog.Logger
	// Registry receives the router's metrics (kamel_cluster_*); nil creates
	// a private registry, keeping the counters functional but unexported.
	Registry *obs.Registry
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.ForwardTimeout <= 0 {
		out.ForwardTimeout = 10 * time.Second
	}
	if out.Retries == 0 {
		out.Retries = 1
	}
	if out.Retries < 0 {
		out.Retries = 0
	}
	if out.RetryBackoff <= 0 {
		out.RetryBackoff = 50 * time.Millisecond
	}
	if out.ProbeInterval <= 0 {
		out.ProbeInterval = 5 * time.Second
	}
	if out.Logger == nil {
		out.Logger = slog.Default()
	}
	if out.Registry == nil {
		out.Registry = obs.NewRegistry()
	}
	return out
}

// peer is one remote shard's connection state.  Health is advisory: it is
// only consulted for fail-fast when a probe loop is running (otherwise a
// dead verdict could never be revised).
type peer struct {
	shard Shard
	// alive: the peer answered *something* over HTTP — the process is up
	// even if it has no models yet.  Gates writes (train fan-out), which an
	// untrained replica must receive to ever become ready.
	alive atomic.Bool
	// healthy: the peer's /readyz answered 200 — it can serve model
	// imputations.  Gates reads.
	healthy atomic.Bool
	fails   atomic.Int64 // consecutive forward failures
}

// routeState is the immutable evaluation of one shard map.  Swapped whole on
// Reload; in-flight forwards keep the peer objects they resolved, so a
// reload never tears a request.
type routeState struct {
	m     *Map
	keys  keyer
	ids   []string // sorted shard ids, the rendezvous candidate list
	peers map[string]*peer
}

// Router owns the routing decision (Owner) and the transport to peers
// (Forward).  All methods are safe for concurrent use.
type Router struct {
	opts    Options
	client  *http.Client
	state   atomic.Pointer[routeState]
	probing atomic.Bool

	forwards    *obs.Counter // forwarded requests attempted
	forwardErrs *obs.Counter // forwards that exhausted retries
	retries     *obs.Counter // retry attempts issued
	hedges      *obs.Counter // hedged second requests launched
	degraded    *obs.Counter // elements served by the local linear fallback
	unavailable *obs.Counter // elements answered 503: no replica, no fallback
	probeFails  *obs.Counter // health probes that failed
	failovers   *obs.Counter // forwards that moved past the primary replica
	writeFwd    *obs.Counter // train sub-batches forwarded to replica peers
	writeErrs   *obs.Counter // train sub-batch forwards that failed
	quorumFails *obs.Counter // train groups that missed write quorum

	histMu sync.Mutex
	hists  map[string]*obs.Histogram // peer id → forward latency histogram
}

// New builds a router for the given map.  opts.Self must be a shard in it.
func New(m *Map, opts Options) (*Router, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	o := opts.withDefaults()
	if o.Self == "" {
		return nil, fmt.Errorf("cluster: Options.Self is required")
	}
	r := &Router{
		opts:   o,
		client: &http.Client{Transport: o.Transport},
		hists:  make(map[string]*obs.Histogram),
	}
	reg := o.Registry
	r.forwards = reg.Counter("kamel_cluster_forwards_total",
		"Requests forwarded to an owning peer shard.")
	r.forwardErrs = reg.Counter("kamel_cluster_forward_errors_total",
		"Forwards that exhausted their retry budget.")
	r.retries = reg.Counter("kamel_cluster_retries_total",
		"Forward retry attempts issued.")
	r.hedges = reg.Counter("kamel_cluster_hedges_total",
		"Hedged second requests launched against a slow peer.")
	r.degraded = reg.Counter("kamel_cluster_degraded_total",
		"Requests served by the local linear fallback because the owning shard was down.")
	r.unavailable = reg.Counter("kamel_cluster_unavailable_total",
		"Requests answered 503: every owning peer unreachable and no local fallback.")
	r.probeFails = reg.Counter("kamel_cluster_probe_failures_total",
		"Peer health probes that failed.")
	r.failovers = reg.Counter("kamel_cluster_failovers_total",
		"Forwards that failed over past the primary to a lower-ranked replica.")
	r.writeFwd = reg.Counter("kamel_cluster_write_forwards_total",
		"Train sub-batches forwarded to replica peers.")
	r.writeErrs = reg.Counter("kamel_cluster_write_errors_total",
		"Train sub-batch forwards that failed.")
	r.quorumFails = reg.Counter("kamel_cluster_write_quorum_failures_total",
		"Train replica groups acknowledged by fewer than a majority.")
	reg.GaugeFunc("kamel_cluster_replicas",
		"Replica-group size of the shard map currently routing.", func() float64 {
			return float64(r.Map().ReplicaCount())
		})
	reg.GaugeFunc("kamel_cluster_map_generation",
		"Generation of the shard map currently routing.", func() float64 {
			return float64(r.Map().Generation)
		})
	reg.GaugeFunc("kamel_cluster_peers",
		"Shards in the map, excluding self.", func() float64 {
			return float64(len(r.state.Load().peers))
		})
	reg.GaugeFunc("kamel_cluster_peers_healthy",
		"Peers whose last health signal was good.", func() float64 {
			n := 0
			for _, p := range r.state.Load().peers {
				if p.healthy.Load() {
					n++
				}
			}
			return float64(n)
		})
	st, err := r.buildState(m, nil)
	if err != nil {
		return nil, err
	}
	r.state.Store(st)
	return r, nil
}

// buildState evaluates a map into routing state, carrying health over from
// prev for peers whose identity and address are unchanged.
func (r *Router) buildState(m *Map, prev *routeState) (*routeState, error) {
	st := &routeState{
		m:     m,
		keys:  newKeyer(m),
		ids:   m.ShardIDs(),
		peers: make(map[string]*peer, len(m.Shards)),
	}
	self := false
	for _, sh := range m.Shards {
		if sh.ID == r.opts.Self {
			self = true
			continue // never a peer of itself
		}
		p := &peer{shard: sh}
		p.alive.Store(true)
		p.healthy.Store(true)
		if prev != nil {
			if old, ok := prev.peers[sh.ID]; ok && old.shard.Addr == sh.Addr {
				p.alive.Store(old.alive.Load())
				p.healthy.Store(old.healthy.Load())
				p.fails.Store(old.fails.Load())
			}
		}
		st.peers[sh.ID] = p
	}
	if !self {
		return nil, fmt.Errorf("cluster: self shard %q not in map generation %d", r.opts.Self, m.Generation)
	}
	return st, nil
}

// Reload swaps in a new shard map atomically.  Maps older than the current
// generation are rejected with ErrStaleMap; the same generation is accepted
// idempotently.  In-flight forwards finish against the state they resolved.
func (r *Router) Reload(m *Map) error {
	if err := m.Validate(); err != nil {
		return err
	}
	cur := r.state.Load()
	if m.Generation < cur.m.Generation {
		return fmt.Errorf("%w: have %d, got %d", ErrStaleMap, cur.m.Generation, m.Generation)
	}
	st, err := r.buildState(m, cur)
	if err != nil {
		return err
	}
	r.state.Store(st)
	r.opts.Logger.Info("shard map reloaded", "component", "cluster",
		"generation", m.Generation, "shards", len(m.Shards))
	return nil
}

// Self returns this process's shard id.
func (r *Router) Self() string { return r.opts.Self }

// Map returns the shard map currently routing.
func (r *Router) Map() *Map { return r.state.Load().m }

// Owner returns the shard owning the trajectory described by points, plus
// the shard cell that decided it.  ok is false for an empty point list (the
// caller should serve locally; there is nothing spatial to route by).
func (r *Router) Owner(points []geo.Point) (shardID string, cell grid.Cell, ok bool) {
	a, ok := anchor(points)
	if !ok {
		return r.opts.Self, 0, false
	}
	st := r.state.Load()
	c := st.keys.cellFor(a)
	return rendezvousOwner(st.ids, c), c, true
}

// OwnerOfCell returns the shard owning one shard cell under the current map.
func (r *Router) OwnerOfCell(c grid.Cell) string {
	st := r.state.Load()
	return rendezvousOwner(st.ids, c)
}

// ReplicaGroup returns the ordered replica group for the trajectory described
// by points: the map's top-R rendezvous candidates for its shard cell, primary
// first.  ok is false for an empty point list (serve locally).
func (r *Router) ReplicaGroup(points []geo.Point) (group []string, cell grid.Cell, ok bool) {
	a, ok := anchor(points)
	if !ok {
		return []string{r.opts.Self}, 0, false
	}
	st := r.state.Load()
	c := st.keys.cellFor(a)
	return rendezvousRank(st.ids, c, st.m.ReplicaCount()), c, true
}

// ReplicasOfCell returns the ordered replica group of one shard cell.
func (r *Router) ReplicasOfCell(c grid.Cell) []string {
	st := r.state.Load()
	return rendezvousRank(st.ids, c, st.m.ReplicaCount())
}

// PeerIDs returns the sorted ids of every shard in the map except self.
func (r *Router) PeerIDs() []string {
	st := r.state.Load()
	out := make([]string, 0, len(st.peers))
	for id := range st.peers {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Healthy reports the last known health of a shard (self is always healthy).
func (r *Router) Healthy(shardID string) bool {
	if shardID == r.opts.Self {
		return true
	}
	p, ok := r.state.Load().peers[shardID]
	return ok && p.healthy.Load()
}

// CountDegraded records n elements served by the local linear fallback.
func (r *Router) CountDegraded(n int64) { r.degraded.Add(n) }

// CountUnavailable records n elements answered 503: every replica of their
// cell was unreachable and the local linear fallback could not serve them.
func (r *Router) CountUnavailable(n int64) { r.unavailable.Add(n) }

// CountWrites records the outcome of a train fan-out: acked peer forwards,
// failed peer forwards, and replica groups that missed majority quorum.
func (r *Router) CountWrites(acked, failed, quorumMisses int64) {
	r.writeFwd.Add(acked)
	r.writeErrs.Add(failed)
	r.quorumFails.Add(quorumMisses)
}

// ForwardResult is a peer's answer: the HTTP status and the full body.
type ForwardResult struct {
	Status int
	Body   []byte
}

// retryableStatus reports whether a peer's status code means "try this peer
// again" — only server-side failures (5xx) qualify.  429 (shedding) and 409
// (not trained) are active refusals: the peer is alive and will refuse the
// identical request again, so retrying only amplifies its load (see
// ErrPeerBusy).  Other 4xx mean the request itself is bad and pass through.
func retryableStatus(code int) bool {
	return code >= 500
}

// busyStatus reports whether a status is an active refusal: the peer cannot
// take this work now but is not down.
func busyStatus(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusConflict
}

// Forward carries body to shardID's path (which may include a query string)
// as a POST and returns the peer's response.  The request inherits ctx's
// request id (X-Request-ID) so cross-shard traces stitch, and is marked with
// HeaderForwarded so the peer serves it locally.  Transport errors and 5xx
// statuses consume the bounded retry budget with exponential backoff; when it
// is exhausted the peer is marked unhealthy and the error wraps
// ErrPeerUnavailable.  A 429/409 refusal is returned immediately (with the
// response) wrapping ErrPeerBusy — never retried, and the peer stays healthy.
func (r *Router) Forward(ctx context.Context, shardID, path string, body []byte) (ForwardResult, error) {
	return r.forward(ctx, shardID, path, body, r.opts.Retries, true, true)
}

// ForwardWrite carries a non-idempotent request (a train batch) to a peer in
// exactly one attempt: no retry and no hedge, because a retry after a lost
// response could apply the batch twice.  Error semantics match Forward,
// except health gating: writes fail fast only on a probed-*dead* peer, not a
// merely not-ready one — an untrained replica answers /readyz 503 yet must
// still receive train fan-out, or it could never bootstrap.
func (r *Router) ForwardWrite(ctx context.Context, shardID, path string, body []byte) (ForwardResult, error) {
	return r.forward(ctx, shardID, path, body, 0, false, false)
}

func (r *Router) forward(ctx context.Context, shardID, path string, body []byte, retries int, hedge, gateReady bool) (ForwardResult, error) {
	st := r.state.Load()
	p, ok := st.peers[shardID]
	if !ok {
		return ForwardResult{}, fmt.Errorf("%w: %q (map generation %d)", ErrUnknownShard, shardID, st.m.Generation)
	}
	// Fail fast on a known-bad peer, but only while a probe loop is running
	// to eventually revise the verdict.  Reads additionally require the peer
	// to be ready (it has models to serve with); writes only require it to
	// be alive.
	if r.probing.Load() {
		if !p.alive.Load() {
			return ForwardResult{}, fmt.Errorf("%w: %s marked down", ErrPeerUnavailable, shardID)
		}
		if gateReady && !p.healthy.Load() {
			return ForwardResult{}, fmt.Errorf("%w: %s marked unhealthy", ErrPeerUnavailable, shardID)
		}
	}
	r.forwards.Inc()

	var lastErr error
	backoff := r.opts.RetryBackoff
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			r.retries.Inc()
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return ForwardResult{}, ctx.Err()
			}
			backoff *= 2
		}
		res, err := r.attempt(ctx, p, path, body, hedge)
		if err == nil {
			if busyStatus(res.Status) {
				// The peer answered; it is healthy, just refusing.  Hand the
				// refusal (and its body) to the caller's ladder.
				p.alive.Store(true)
				p.healthy.Store(true)
				p.fails.Store(0)
				return res, fmt.Errorf("%w: %s answered %d", ErrPeerBusy, shardID, res.Status)
			}
			if !retryableStatus(res.Status) {
				p.alive.Store(true)
				if gateReady {
					// Only a served read proves readiness; a write ack means
					// the peer accepted work, which /readyz will confirm.
					p.healthy.Store(true)
				}
				p.fails.Store(0)
				return res, nil
			}
			err = fmt.Errorf("cluster: peer %s answered %d", shardID, res.Status)
		}
		lastErr = err
		if ctx.Err() != nil {
			return ForwardResult{}, ctx.Err()
		}
	}
	p.fails.Add(1)
	p.alive.Store(false)
	p.healthy.Store(false)
	r.forwardErrs.Inc()
	r.opts.Logger.Warn("forward failed", "component", "cluster",
		"peer", shardID, "path", path, "err", lastErr.Error())
	return ForwardResult{}, fmt.Errorf("%w: %s: %v", ErrPeerUnavailable, shardID, lastErr)
}

// ForwardAny walks a replica group in rank order and returns the first
// answer: Forward semantics per member, failing over to the next on
// ErrPeerUnavailable or ErrPeerBusy.  Health gating is per member (a probed-
// dead peer fails fast and the walk moves on); servedBy names the member that
// answered.  Self entries are skipped — the caller serves locally before
// reaching for the group.  When every member fails, the last error (wrapping
// ErrPeerUnavailable or ErrPeerBusy) is returned.
func (r *Router) ForwardAny(ctx context.Context, group []string, path string, body []byte) (res ForwardResult, servedBy string, err error) {
	var lastErr error
	tried := 0
	for _, member := range group {
		if member == r.opts.Self {
			continue
		}
		if tried > 0 {
			r.failovers.Inc()
		}
		tried++
		sp := obs.StartSpan(ctx, "cluster.attempt")
		sp.SetAttr("peer", member)
		res, err := r.Forward(ctx, member, path, body)
		switch {
		case err == nil:
			sp.SetAttr("outcome", "ok")
		case errors.Is(err, ErrPeerBusy):
			sp.SetAttr("outcome", "busy")
		default:
			sp.SetAttr("outcome", "retriable")
		}
		sp.End()
		if err == nil {
			return res, member, nil
		}
		if ctx.Err() != nil {
			return ForwardResult{}, "", ctx.Err()
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("%w: no forwardable replica in group %v", ErrPeerUnavailable, group)
	}
	return ForwardResult{}, "", lastErr
}

// Get issues one GET to a peer (no retry, no hedge) and returns the full
// response.  The anti-entropy syncer uses it to read peer manifests and pull
// model payloads; transport failures wrap ErrPeerUnavailable without marking
// the peer unhealthy (the sweep is background work, not a serving signal).
func (r *Router) Get(ctx context.Context, shardID, path string) (ForwardResult, error) {
	st := r.state.Load()
	p, ok := st.peers[shardID]
	if !ok {
		return ForwardResult{}, fmt.Errorf("%w: %q (map generation %d)", ErrUnknownShard, shardID, st.m.Generation)
	}
	ctx, cancel := context.WithTimeout(ctx, r.opts.ForwardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.shard.Addr+path, nil)
	if err != nil {
		return ForwardResult{}, err
	}
	req.Header.Set(HeaderForwarded, r.opts.Self)
	if id := obs.RequestIDFrom(ctx); id != "" {
		req.Header.Set("X-Request-ID", id)
	}
	if tc, ok := obs.TraceFrom(ctx).Context(); ok {
		req.Header.Set(obs.HeaderTraceparent, obs.FormatTraceparent(tc))
	}
	setAdmissionHeaders(req, ctx)
	resp, err := r.client.Do(req)
	if err != nil {
		return ForwardResult{}, fmt.Errorf("%w: %s: %v", ErrPeerUnavailable, shardID, err)
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		return ForwardResult{}, fmt.Errorf("%w: %s: %v", ErrPeerUnavailable, shardID, err)
	}
	return ForwardResult{Status: resp.StatusCode, Body: buf}, nil
}

// attempt issues one forwarded request, hedged when configured: if the
// primary has not answered within HedgeAfter, an identical secondary is
// launched and whichever finishes first wins (the loser's context is
// cancelled).  Latency is recorded per peer.
func (r *Router) attempt(ctx context.Context, p *peer, path string, body []byte, hedge bool) (ForwardResult, error) {
	ctx, cancel := context.WithTimeout(ctx, r.opts.ForwardTimeout)
	defer cancel()

	if r.opts.HedgeAfter <= 0 || !hedge {
		return r.send(ctx, p, path, body)
	}

	type outcome struct {
		res ForwardResult
		err error
	}
	results := make(chan outcome, 2)
	launch := func() {
		res, err := r.send(ctx, p, path, body)
		results <- outcome{res, err}
	}
	go launch()
	hedgeTimer := time.NewTimer(r.opts.HedgeAfter)
	defer hedgeTimer.Stop()
	launched := 1
	var firstErr *outcome
	for {
		select {
		case <-hedgeTimer.C:
			if launched < 2 {
				launched++
				r.hedges.Inc()
				go launch()
			}
		case o := <-results:
			if o.err == nil {
				return o.res, nil // winner; cancel releases the loser
			}
			if launched < 2 {
				// Primary failed before the hedge fired: no point hedging a
				// request the peer actively refused.
				return o.res, o.err
			}
			if firstErr == nil {
				firstErr = &o
				continue // wait for the other attempt
			}
			return o.res, o.err
		case <-ctx.Done():
			return ForwardResult{}, ctx.Err()
		}
	}
}

// setAdmissionHeaders propagates the originating request's admission baggage
// (client identity and priority) to a forwarded hop, so the receiving node's
// adaptive admission controller bills the work to the true tenant — not to
// the gateway peer — and applies the right priority lane before decoding the
// body.
func setAdmissionHeaders(req *http.Request, ctx context.Context) {
	if id := obs.ClientIDFrom(ctx); id != "" {
		req.Header.Set(obs.HeaderClient, id)
	}
	if pri := obs.PriorityLabelFrom(ctx); pri != "" {
		req.Header.Set(obs.HeaderPriority, pri)
	}
}

// send issues one HTTP request to a peer and reads the full response.
func (r *Router) send(ctx context.Context, p *peer, path string, body []byte) (ForwardResult, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.shard.Addr+path, bytes.NewReader(body))
	if err != nil {
		return ForwardResult{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HeaderForwarded, r.opts.Self)
	if id := obs.RequestIDFrom(ctx); id != "" {
		req.Header.Set("X-Request-ID", id)
	}
	if tc, ok := obs.TraceFrom(ctx).Context(); ok {
		req.Header.Set(obs.HeaderTraceparent, obs.FormatTraceparent(tc))
	}
	setAdmissionHeaders(req, ctx)
	start := time.Now()
	resp, err := r.client.Do(req)
	r.peerHist(p.shard.ID).ObserveDuration(time.Since(start))
	if err != nil {
		return ForwardResult{}, err
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		return ForwardResult{}, err
	}
	return ForwardResult{Status: resp.StatusCode, Body: buf}, nil
}

// peerHist resolves the per-peer forward-latency histogram, cached so the
// steady state avoids a registry registration per request.
func (r *Router) peerHist(peerID string) *obs.Histogram {
	r.histMu.Lock()
	defer r.histMu.Unlock()
	h := r.hists[peerID]
	if h == nil {
		h = r.opts.Registry.Histogram("kamel_cluster_forward_seconds",
			"Forwarded-request latency by peer shard.", nil, obs.L("peer", peerID))
		r.hists[peerID] = h
	}
	return h
}

// StartProbing runs the health-probe loop until ctx is cancelled: every
// ProbeInterval each peer's /readyz is checked, updating the alive flag
// (ForwardWrite fail-fasts on it) and the ready flag (Forward fail-fasts on
// it; /v1/stats reports it).  Run it in a goroutine.
func (r *Router) StartProbing(ctx context.Context) {
	r.probing.Store(true)
	defer r.probing.Store(false)
	ticker := time.NewTicker(r.opts.ProbeInterval)
	defer ticker.Stop()
	for {
		r.probeOnce(ctx)
		select {
		case <-ticker.C:
		case <-ctx.Done():
			return
		}
	}
}

// probeOnce checks every peer's /readyz once, concurrently.
func (r *Router) probeOnce(ctx context.Context) {
	st := r.state.Load()
	timeout := r.opts.ProbeInterval
	if timeout > 2*time.Second {
		timeout = 2 * time.Second
	}
	var wg sync.WaitGroup
	for _, p := range st.peers {
		wg.Add(1)
		go func(p *peer) {
			defer wg.Done()
			alive, ready := r.probePeer(ctx, p, timeout)
			wasAlive := p.alive.Swap(alive)
			wasReady := p.healthy.Swap(ready)
			if !ready {
				r.probeFails.Inc()
			}
			if wasAlive != alive || wasReady != ready {
				r.opts.Logger.Info("peer health changed", "component", "cluster",
					"peer", p.shard.ID, "alive", alive, "ready", ready)
			}
		}(p)
	}
	wg.Wait()
}

// probePeer GETs the peer's /readyz.  alive means the request got *any* HTTP
// answer (the process is up — e.g. an untrained node answers 503); ready
// means it answered 200 (it can serve model imputations).
func (r *Router) probePeer(ctx context.Context, p *peer, timeout time.Duration) (alive, ready bool) {
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.shard.Addr+"/readyz", nil)
	if err != nil {
		return false, false
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return false, false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return true, resp.StatusCode == http.StatusOK
}

// PeerStatus is one peer's identity and health for /v1/stats.
type PeerStatus struct {
	ID      string `json:"id"`
	Addr    string `json:"addr"`
	Healthy bool   `json:"healthy"`
}

// Stats is the router's cumulative accounting, embedded into /v1/stats so
// operators see the sharding layer next to the serving counters.
type Stats struct {
	Self           string       `json:"self"`
	MapGeneration  int          `json:"map_generation"`
	ShardCellEdgeM float64      `json:"shard_cell_edge_m"`
	Shards         int          `json:"shards"`
	Replicas       int          `json:"replicas"`
	PeersHealthy   int          `json:"peers_healthy"`
	Forwards       int64        `json:"forwarded_requests"`
	ForwardErrors  int64        `json:"forward_errors"`
	Retries        int64        `json:"forward_retries"`
	Hedges         int64        `json:"hedged_requests"`
	Failovers      int64        `json:"replica_failovers"`
	Degraded       int64        `json:"degraded_requests"`
	Unavailable    int64        `json:"unavailable_requests"`
	WriteForwards  int64        `json:"write_forwards"`
	WriteErrors    int64        `json:"write_errors"`
	QuorumFailures int64        `json:"write_quorum_failures"`
	Peers          []PeerStatus `json:"peers"`
}

// ClusterStats snapshots the router's accounting.
func (r *Router) ClusterStats() Stats {
	st := r.state.Load()
	out := Stats{
		Self:           r.opts.Self,
		MapGeneration:  st.m.Generation,
		ShardCellEdgeM: st.m.EdgeM(),
		Shards:         len(st.m.Shards),
		Replicas:       st.m.ReplicaCount(),
		Forwards:       r.forwards.Value(),
		ForwardErrors:  r.forwardErrs.Value(),
		Retries:        r.retries.Value(),
		Hedges:         r.hedges.Value(),
		Failovers:      r.failovers.Value(),
		Degraded:       r.degraded.Value(),
		Unavailable:    r.unavailable.Value(),
		WriteForwards:  r.writeFwd.Value(),
		WriteErrors:    r.writeErrs.Value(),
		QuorumFailures: r.quorumFails.Value(),
	}
	for _, p := range st.peers {
		healthy := p.healthy.Load()
		if healthy {
			out.PeersHealthy++
		}
		out.Peers = append(out.Peers, PeerStatus{ID: p.shard.ID, Addr: p.shard.Addr, Healthy: healthy})
	}
	sort.Slice(out.Peers, func(i, j int) bool { return out.Peers[i].ID < out.Peers[j].ID })
	return out
}

package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"kamel/internal/geo"
	"kamel/internal/grid"
	"kamel/internal/obs"
)

// HeaderForwarded marks a request as already forwarded once.  A node that
// receives it serves locally no matter what the shard map says, so routing
// terminates after one hop even if two nodes momentarily disagree on the map.
const HeaderForwarded = "X-Kamel-Forwarded"

// ErrPeerUnavailable wraps the last transport or server error after the
// retry budget for a peer is exhausted (or the peer was known-dead and the
// call failed fast).  The serving layer keys its degradation ladder off it.
var ErrPeerUnavailable = errors.New("cluster: peer unavailable")

// ErrStaleMap is returned by Reload for a map whose generation is below the
// one currently routing.
var ErrStaleMap = errors.New("cluster: stale shard map generation")

// ErrUnknownShard is returned by Forward for a shard id absent from the map.
var ErrUnknownShard = errors.New("cluster: unknown shard")

// Options tune a Router.  The zero value of each field selects the default
// noted on it.
type Options struct {
	// Self is the shard id this process serves; required, and must appear in
	// every map the router is given.
	Self string
	// ForwardTimeout bounds one forwarded attempt (default 10s).
	ForwardTimeout time.Duration
	// Retries is how many additional attempts follow a failed forward
	// (default 1; negative disables retries).
	Retries int
	// RetryBackoff is the pause before the first retry, doubled per retry
	// (default 50ms).
	RetryBackoff time.Duration
	// HedgeAfter, when positive, launches a second identical request if the
	// first has not answered within this duration, and takes whichever
	// finishes first — the classic tail-latency hedge.  0 disables.
	HedgeAfter time.Duration
	// ProbeInterval is the /readyz health-probe period (default 5s).
	ProbeInterval time.Duration
	// Transport overrides the forwarding HTTP transport (tests inject
	// failure modes here); nil uses http.DefaultTransport.
	Transport http.RoundTripper
	// Logger receives forward/probe warnings; nil uses slog.Default().
	Logger *slog.Logger
	// Registry receives the router's metrics (kamel_cluster_*); nil creates
	// a private registry, keeping the counters functional but unexported.
	Registry *obs.Registry
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.ForwardTimeout <= 0 {
		out.ForwardTimeout = 10 * time.Second
	}
	if out.Retries == 0 {
		out.Retries = 1
	}
	if out.Retries < 0 {
		out.Retries = 0
	}
	if out.RetryBackoff <= 0 {
		out.RetryBackoff = 50 * time.Millisecond
	}
	if out.ProbeInterval <= 0 {
		out.ProbeInterval = 5 * time.Second
	}
	if out.Logger == nil {
		out.Logger = slog.Default()
	}
	if out.Registry == nil {
		out.Registry = obs.NewRegistry()
	}
	return out
}

// peer is one remote shard's connection state.  Health is advisory: it is
// only consulted for fail-fast when a probe loop is running (otherwise a
// dead verdict could never be revised).
type peer struct {
	shard   Shard
	healthy atomic.Bool
	fails   atomic.Int64 // consecutive forward failures
}

// routeState is the immutable evaluation of one shard map.  Swapped whole on
// Reload; in-flight forwards keep the peer objects they resolved, so a
// reload never tears a request.
type routeState struct {
	m     *Map
	keys  keyer
	ids   []string // sorted shard ids, the rendezvous candidate list
	peers map[string]*peer
}

// Router owns the routing decision (Owner) and the transport to peers
// (Forward).  All methods are safe for concurrent use.
type Router struct {
	opts    Options
	client  *http.Client
	state   atomic.Pointer[routeState]
	probing atomic.Bool

	forwards    *obs.Counter // forwarded requests attempted
	forwardErrs *obs.Counter // forwards that exhausted retries
	retries     *obs.Counter // retry attempts issued
	hedges      *obs.Counter // hedged second requests launched
	degraded    *obs.Counter // requests served by the local linear fallback
	unavailable *obs.Counter // requests answered 503: no peer, no fallback
	probeFails  *obs.Counter // health probes that failed

	histMu sync.Mutex
	hists  map[string]*obs.Histogram // peer id → forward latency histogram
}

// New builds a router for the given map.  opts.Self must be a shard in it.
func New(m *Map, opts Options) (*Router, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	o := opts.withDefaults()
	if o.Self == "" {
		return nil, fmt.Errorf("cluster: Options.Self is required")
	}
	r := &Router{
		opts:   o,
		client: &http.Client{Transport: o.Transport},
		hists:  make(map[string]*obs.Histogram),
	}
	reg := o.Registry
	r.forwards = reg.Counter("kamel_cluster_forwards_total",
		"Requests forwarded to an owning peer shard.")
	r.forwardErrs = reg.Counter("kamel_cluster_forward_errors_total",
		"Forwards that exhausted their retry budget.")
	r.retries = reg.Counter("kamel_cluster_retries_total",
		"Forward retry attempts issued.")
	r.hedges = reg.Counter("kamel_cluster_hedges_total",
		"Hedged second requests launched against a slow peer.")
	r.degraded = reg.Counter("kamel_cluster_degraded_total",
		"Requests served by the local linear fallback because the owning shard was down.")
	r.unavailable = reg.Counter("kamel_cluster_unavailable_total",
		"Requests answered 503: every owning peer unreachable and no local fallback.")
	r.probeFails = reg.Counter("kamel_cluster_probe_failures_total",
		"Peer health probes that failed.")
	reg.GaugeFunc("kamel_cluster_map_generation",
		"Generation of the shard map currently routing.", func() float64 {
			return float64(r.Map().Generation)
		})
	reg.GaugeFunc("kamel_cluster_peers",
		"Shards in the map, excluding self.", func() float64 {
			return float64(len(r.state.Load().peers))
		})
	reg.GaugeFunc("kamel_cluster_peers_healthy",
		"Peers whose last health signal was good.", func() float64 {
			n := 0
			for _, p := range r.state.Load().peers {
				if p.healthy.Load() {
					n++
				}
			}
			return float64(n)
		})
	st, err := r.buildState(m, nil)
	if err != nil {
		return nil, err
	}
	r.state.Store(st)
	return r, nil
}

// buildState evaluates a map into routing state, carrying health over from
// prev for peers whose identity and address are unchanged.
func (r *Router) buildState(m *Map, prev *routeState) (*routeState, error) {
	st := &routeState{
		m:     m,
		keys:  newKeyer(m),
		ids:   m.ShardIDs(),
		peers: make(map[string]*peer, len(m.Shards)),
	}
	self := false
	for _, sh := range m.Shards {
		if sh.ID == r.opts.Self {
			self = true
			continue // never a peer of itself
		}
		p := &peer{shard: sh}
		p.healthy.Store(true)
		if prev != nil {
			if old, ok := prev.peers[sh.ID]; ok && old.shard.Addr == sh.Addr {
				p.healthy.Store(old.healthy.Load())
				p.fails.Store(old.fails.Load())
			}
		}
		st.peers[sh.ID] = p
	}
	if !self {
		return nil, fmt.Errorf("cluster: self shard %q not in map generation %d", r.opts.Self, m.Generation)
	}
	return st, nil
}

// Reload swaps in a new shard map atomically.  Maps older than the current
// generation are rejected with ErrStaleMap; the same generation is accepted
// idempotently.  In-flight forwards finish against the state they resolved.
func (r *Router) Reload(m *Map) error {
	if err := m.Validate(); err != nil {
		return err
	}
	cur := r.state.Load()
	if m.Generation < cur.m.Generation {
		return fmt.Errorf("%w: have %d, got %d", ErrStaleMap, cur.m.Generation, m.Generation)
	}
	st, err := r.buildState(m, cur)
	if err != nil {
		return err
	}
	r.state.Store(st)
	r.opts.Logger.Info("shard map reloaded", "component", "cluster",
		"generation", m.Generation, "shards", len(m.Shards))
	return nil
}

// Self returns this process's shard id.
func (r *Router) Self() string { return r.opts.Self }

// Map returns the shard map currently routing.
func (r *Router) Map() *Map { return r.state.Load().m }

// Owner returns the shard owning the trajectory described by points, plus
// the shard cell that decided it.  ok is false for an empty point list (the
// caller should serve locally; there is nothing spatial to route by).
func (r *Router) Owner(points []geo.Point) (shardID string, cell grid.Cell, ok bool) {
	a, ok := anchor(points)
	if !ok {
		return r.opts.Self, 0, false
	}
	st := r.state.Load()
	c := st.keys.cellFor(a)
	return rendezvousOwner(st.ids, c), c, true
}

// OwnerOfCell returns the shard owning one shard cell under the current map.
func (r *Router) OwnerOfCell(c grid.Cell) string {
	st := r.state.Load()
	return rendezvousOwner(st.ids, c)
}

// Healthy reports the last known health of a shard (self is always healthy).
func (r *Router) Healthy(shardID string) bool {
	if shardID == r.opts.Self {
		return true
	}
	p, ok := r.state.Load().peers[shardID]
	return ok && p.healthy.Load()
}

// CountDegraded records n requests served by the local linear fallback.
func (r *Router) CountDegraded(n int64) { r.degraded.Add(n) }

// CountUnavailable records one request answered 503 for lack of any shard.
func (r *Router) CountUnavailable() { r.unavailable.Inc() }

// ForwardResult is a peer's answer: the HTTP status and the full body.
type ForwardResult struct {
	Status int
	Body   []byte
}

// retryableStatus reports whether a peer's status code means "try again /
// treat as down" rather than "the request itself is bad".  409 (not
// trained) and 429 (shedding) mean the peer cannot serve the work now, which
// the degradation ladder treats the same as unreachable.
func retryableStatus(code int) bool {
	return code >= 500 || code == http.StatusTooManyRequests || code == http.StatusConflict
}

// Forward carries body to shardID's path (which may include a query string)
// as a POST and returns the peer's response.  The request inherits ctx's
// request id (X-Request-ID) so cross-shard traces stitch, and is marked with
// HeaderForwarded so the peer serves it locally.  Transport errors and
// retryable statuses consume the bounded retry budget with exponential
// backoff; when it is exhausted the peer is marked unhealthy and the error
// wraps ErrPeerUnavailable.
func (r *Router) Forward(ctx context.Context, shardID, path string, body []byte) (ForwardResult, error) {
	st := r.state.Load()
	p, ok := st.peers[shardID]
	if !ok {
		return ForwardResult{}, fmt.Errorf("%w: %q (map generation %d)", ErrUnknownShard, shardID, st.m.Generation)
	}
	// Fail fast on a known-dead peer, but only while a probe loop is running
	// to eventually revise the verdict.
	if r.probing.Load() && !p.healthy.Load() {
		return ForwardResult{}, fmt.Errorf("%w: %s marked unhealthy", ErrPeerUnavailable, shardID)
	}
	r.forwards.Inc()

	var lastErr error
	backoff := r.opts.RetryBackoff
	for attempt := 0; attempt <= r.opts.Retries; attempt++ {
		if attempt > 0 {
			r.retries.Inc()
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return ForwardResult{}, ctx.Err()
			}
			backoff *= 2
		}
		res, err := r.attempt(ctx, p, path, body)
		if err == nil && !retryableStatus(res.Status) {
			p.healthy.Store(true)
			p.fails.Store(0)
			return res, nil
		}
		if err == nil {
			err = fmt.Errorf("cluster: peer %s answered %d", shardID, res.Status)
		}
		lastErr = err
		if ctx.Err() != nil {
			return ForwardResult{}, ctx.Err()
		}
	}
	p.fails.Add(1)
	p.healthy.Store(false)
	r.forwardErrs.Inc()
	r.opts.Logger.Warn("forward failed", "component", "cluster",
		"peer", shardID, "path", path, "err", lastErr.Error())
	return ForwardResult{}, fmt.Errorf("%w: %s: %v", ErrPeerUnavailable, shardID, lastErr)
}

// attempt issues one forwarded request, hedged when configured: if the
// primary has not answered within HedgeAfter, an identical secondary is
// launched and whichever finishes first wins (the loser's context is
// cancelled).  Latency is recorded per peer.
func (r *Router) attempt(ctx context.Context, p *peer, path string, body []byte) (ForwardResult, error) {
	ctx, cancel := context.WithTimeout(ctx, r.opts.ForwardTimeout)
	defer cancel()

	if r.opts.HedgeAfter <= 0 {
		return r.send(ctx, p, path, body)
	}

	type outcome struct {
		res ForwardResult
		err error
	}
	results := make(chan outcome, 2)
	launch := func() {
		res, err := r.send(ctx, p, path, body)
		results <- outcome{res, err}
	}
	go launch()
	hedge := time.NewTimer(r.opts.HedgeAfter)
	defer hedge.Stop()
	launched := 1
	var firstErr *outcome
	for {
		select {
		case <-hedge.C:
			if launched < 2 {
				launched++
				r.hedges.Inc()
				go launch()
			}
		case o := <-results:
			if o.err == nil {
				return o.res, nil // winner; cancel releases the loser
			}
			if launched < 2 {
				// Primary failed before the hedge fired: no point hedging a
				// request the peer actively refused.
				return o.res, o.err
			}
			if firstErr == nil {
				firstErr = &o
				continue // wait for the other attempt
			}
			return o.res, o.err
		case <-ctx.Done():
			return ForwardResult{}, ctx.Err()
		}
	}
}

// send issues one HTTP request to a peer and reads the full response.
func (r *Router) send(ctx context.Context, p *peer, path string, body []byte) (ForwardResult, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.shard.Addr+path, bytes.NewReader(body))
	if err != nil {
		return ForwardResult{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HeaderForwarded, r.opts.Self)
	if id := obs.RequestIDFrom(ctx); id != "" {
		req.Header.Set("X-Request-ID", id)
	}
	start := time.Now()
	resp, err := r.client.Do(req)
	r.peerHist(p.shard.ID).ObserveDuration(time.Since(start))
	if err != nil {
		return ForwardResult{}, err
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		return ForwardResult{}, err
	}
	return ForwardResult{Status: resp.StatusCode, Body: buf}, nil
}

// peerHist resolves the per-peer forward-latency histogram, cached so the
// steady state avoids a registry registration per request.
func (r *Router) peerHist(peerID string) *obs.Histogram {
	r.histMu.Lock()
	defer r.histMu.Unlock()
	h := r.hists[peerID]
	if h == nil {
		h = r.opts.Registry.Histogram("kamel_cluster_forward_seconds",
			"Forwarded-request latency by peer shard.", nil, obs.L("peer", peerID))
		r.hists[peerID] = h
	}
	return h
}

// StartProbing runs the health-probe loop until ctx is cancelled: every
// ProbeInterval each peer's /readyz is checked, updating the health flag
// that Forward fail-fasts on and /v1/stats reports.  Run it in a goroutine.
func (r *Router) StartProbing(ctx context.Context) {
	r.probing.Store(true)
	defer r.probing.Store(false)
	ticker := time.NewTicker(r.opts.ProbeInterval)
	defer ticker.Stop()
	for {
		r.probeOnce(ctx)
		select {
		case <-ticker.C:
		case <-ctx.Done():
			return
		}
	}
}

// probeOnce checks every peer's /readyz once, concurrently.
func (r *Router) probeOnce(ctx context.Context) {
	st := r.state.Load()
	timeout := r.opts.ProbeInterval
	if timeout > 2*time.Second {
		timeout = 2 * time.Second
	}
	var wg sync.WaitGroup
	for _, p := range st.peers {
		wg.Add(1)
		go func(p *peer) {
			defer wg.Done()
			ok := r.probePeer(ctx, p, timeout)
			was := p.healthy.Swap(ok)
			if !ok {
				r.probeFails.Inc()
			}
			if was != ok {
				r.opts.Logger.Info("peer health changed", "component", "cluster",
					"peer", p.shard.ID, "healthy", ok)
			}
		}(p)
	}
	wg.Wait()
}

func (r *Router) probePeer(ctx context.Context, p *peer, timeout time.Duration) bool {
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.shard.Addr+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// PeerStatus is one peer's identity and health for /v1/stats.
type PeerStatus struct {
	ID      string `json:"id"`
	Addr    string `json:"addr"`
	Healthy bool   `json:"healthy"`
}

// Stats is the router's cumulative accounting, embedded into /v1/stats so
// operators see the sharding layer next to the serving counters.
type Stats struct {
	Self           string       `json:"self"`
	MapGeneration  int          `json:"map_generation"`
	ShardCellEdgeM float64      `json:"shard_cell_edge_m"`
	Shards         int          `json:"shards"`
	PeersHealthy   int          `json:"peers_healthy"`
	Forwards       int64        `json:"forwarded_requests"`
	ForwardErrors  int64        `json:"forward_errors"`
	Retries        int64        `json:"forward_retries"`
	Hedges         int64        `json:"hedged_requests"`
	Degraded       int64        `json:"degraded_requests"`
	Unavailable    int64        `json:"unavailable_requests"`
	Peers          []PeerStatus `json:"peers"`
}

// ClusterStats snapshots the router's accounting.
func (r *Router) ClusterStats() Stats {
	st := r.state.Load()
	out := Stats{
		Self:           r.opts.Self,
		MapGeneration:  st.m.Generation,
		ShardCellEdgeM: st.m.EdgeM(),
		Shards:         len(st.m.Shards),
		Forwards:       r.forwards.Value(),
		ForwardErrors:  r.forwardErrs.Value(),
		Retries:        r.retries.Value(),
		Hedges:         r.hedges.Value(),
		Degraded:       r.degraded.Value(),
		Unavailable:    r.unavailable.Value(),
	}
	for _, p := range st.peers {
		healthy := p.healthy.Load()
		if healthy {
			out.PeersHealthy++
		}
		out.Peers = append(out.Peers, PeerStatus{ID: p.shard.ID, Addr: p.shard.Addr, Healthy: healthy})
	}
	sort.Slice(out.Peers, func(i, j int) bool { return out.Peers[i].ID < out.Peers[j].ID })
	return out
}

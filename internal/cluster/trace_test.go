package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"kamel/internal/obs"
)

// tracedCtx binds a sampled root trace (and the registry sink) to a context,
// returning both, as the serving layer's observe middleware does per request.
func tracedCtx(reg *obs.Registry) (context.Context, *obs.Trace) {
	tr := obs.NewRootTrace(true)
	ctx := obs.ContextWithRequestID(context.Background(), obs.NewRequestID())
	return obs.With(ctx, tr, reg), tr
}

// TestClusterTraceparentPropagation: a forwarded POST and an anti-entropy
// style GET both carry the caller's trace identity — trace ID preserved, the
// caller's span ID as the parent, sampling flag intact — plus the request ID.
func TestClusterTraceparentPropagation(t *testing.T) {
	type seen struct {
		traceparent, reqID string
	}
	var mu sync.Mutex
	var got []seen
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		got = append(got, seen{r.Header.Get(obs.HeaderTraceparent), r.Header.Get("X-Request-ID")})
		mu.Unlock()
		w.Write([]byte(`{}`))
	}))
	defer peer.Close()

	m := testMap(1, Shard{ID: "shard-0", Addr: "http://h:1"}, Shard{ID: "shard-1", Addr: peer.URL})
	rt, err := New(m, Options{Self: "shard-0", Logger: testLogger()})
	if err != nil {
		t.Fatal(err)
	}
	ctx, tr := tracedCtx(rt.opts.Registry)
	if _, err := rt.Forward(ctx, "shard-1", "/v1/impute", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Get(ctx, "shard-1", "/v1/cluster/manifest"); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	snapshot := append([]seen(nil), got...)
	mu.Unlock()
	if len(snapshot) != 2 {
		t.Fatalf("peer saw %d requests, want 2", len(snapshot))
	}
	for i, s := range snapshot {
		tc, ok := obs.ParseTraceparent(s.traceparent)
		if !ok {
			t.Fatalf("request %d: malformed traceparent %q", i, s.traceparent)
		}
		if tc.TraceID != tr.TraceID {
			t.Errorf("request %d: trace id %s, want %s", i, tc.TraceID, tr.TraceID)
		}
		if tc.SpanID != tr.SpanID {
			t.Errorf("request %d: parent span %s, want caller's %s", i, tc.SpanID, tr.SpanID)
		}
		if !tc.Sampled {
			t.Errorf("request %d: sampled flag lost", i)
		}
		if s.reqID == "" {
			t.Errorf("request %d: missing X-Request-ID", i)
		}
	}

	// An identity-less trace (the ?debug=1 recorder) must NOT propagate.
	plain := obs.With(context.Background(), obs.NewTrace(), nil)
	if _, err := rt.Forward(plain, "shard-1", "/v1/impute", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	last := got[len(got)-1]
	mu.Unlock()
	if last.traceparent != "" {
		t.Errorf("identity-less trace leaked a traceparent: %q", last.traceparent)
	}
}

// TestClusterFailoverTraceContinuity: a ForwardAny walk that fails over must
// yield ONE trace whose spans record every attempt — the attempted peer and
// its busy/retriable classification as span attributes (the satellite
// acceptance for replica-failover trace continuity).
func TestClusterFailoverTraceContinuity(t *testing.T) {
	busy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":{"code":"overloaded","message":"shed"}}`, http.StatusTooManyRequests)
	}))
	defer busy.Close()
	ok := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"ok":true}`))
	}))
	defer ok.Close()

	m := testMap(1,
		Shard{ID: "shard-0", Addr: "http://h:1"},
		Shard{ID: "shard-1", Addr: busy.URL},
		Shard{ID: "shard-2", Addr: ok.URL})
	rt, err := New(m, Options{Self: "shard-0", Retries: 0, RetryBackoff: time.Millisecond, Logger: testLogger()})
	if err != nil {
		t.Fatal(err)
	}
	ctx, tr := tracedCtx(rt.opts.Registry)
	res, servedBy, err := rt.ForwardAny(ctx, []string{"shard-0", "shard-1", "shard-2"}, "/v1/impute", []byte(`{}`))
	if err != nil {
		t.Fatalf("failover walk: %v", err)
	}
	if servedBy != "shard-2" || res.Status != http.StatusOK {
		t.Fatalf("served by %s status %d, want shard-2 / 200", servedBy, res.Status)
	}

	var attempts []obs.SpanRecord
	for _, sp := range tr.Records() {
		if sp.Name == "cluster.attempt" {
			attempts = append(attempts, sp)
		}
	}
	if len(attempts) != 2 {
		t.Fatalf("trace recorded %d cluster.attempt spans, want 2 (busy peer + failover)", len(attempts))
	}
	attr := func(sp obs.SpanRecord, key string) string {
		for _, a := range sp.Attrs {
			if a.Key == key {
				return a.Value
			}
		}
		return ""
	}
	if p, o := attr(attempts[0], "peer"), attr(attempts[0], "outcome"); p != "shard-1" || o != "busy" {
		t.Errorf("first attempt peer=%s outcome=%s, want shard-1/busy", p, o)
	}
	if p, o := attr(attempts[1], "peer"), attr(attempts[1], "outcome"); p != "shard-2" || o != "ok" {
		t.Errorf("second attempt peer=%s outcome=%s, want shard-2/ok", p, o)
	}

	// A dead peer classifies as retriable.
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close()
	m2 := testMap(2,
		Shard{ID: "shard-0", Addr: "http://h:1"},
		Shard{ID: "shard-1", Addr: dead.URL},
		Shard{ID: "shard-2", Addr: ok.URL})
	if err := rt.Reload(m2); err != nil {
		t.Fatal(err)
	}
	ctx2, tr2 := tracedCtx(rt.opts.Registry)
	if _, servedBy, err = rt.ForwardAny(ctx2, []string{"shard-1", "shard-2"}, "/v1/impute", []byte(`{}`)); err != nil || servedBy != "shard-2" {
		t.Fatalf("walk past dead peer: served by %s, err %v", servedBy, err)
	}
	var outcomes []string
	for _, sp := range tr2.Records() {
		if sp.Name == "cluster.attempt" {
			for _, a := range sp.Attrs {
				if a.Key == "outcome" {
					outcomes = append(outcomes, a.Value)
				}
			}
		}
	}
	if len(outcomes) != 2 || outcomes[0] != "retriable" || outcomes[1] != "ok" {
		t.Fatalf("outcomes = %v, want [retriable ok]", outcomes)
	}
}

// TestClusterAntiEntropyTraced: SweepOnce's background GETs are attributable
// — they carry a sync- request ID and a valid traceparent even though no
// request context flowed in.
func TestClusterAntiEntropyTraced(t *testing.T) {
	var mu sync.Mutex
	var reqIDs, traceparents []string
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		reqIDs = append(reqIDs, r.Header.Get("X-Request-ID"))
		traceparents = append(traceparents, r.Header.Get(obs.HeaderTraceparent))
		mu.Unlock()
		http.NotFound(w, r) // no manifest; the sweep just moves on
	}))
	defer peer.Close()

	m := testMap(1, Shard{ID: "shard-0", Addr: "http://h:1"}, Shard{ID: "shard-1", Addr: peer.URL})
	rt, err := New(m, Options{Self: "shard-0", Logger: testLogger()})
	if err != nil {
		t.Fatal(err)
	}
	store := &fakeReplicaStore{ok: true, doc: ManifestDoc{Shard: "shard-0"}}
	sy := NewSyncer(rt, store, SyncerOptions{Logger: testLogger()})
	sy.SweepOnce(context.Background())

	mu.Lock()
	defer mu.Unlock()
	if len(reqIDs) == 0 {
		t.Fatal("peer saw no anti-entropy requests")
	}
	for i := range reqIDs {
		if len(reqIDs[i]) < 5 || reqIDs[i][:5] != "sync-" {
			t.Errorf("request %d: id %q, want sync- prefix", i, reqIDs[i])
		}
		if _, ok := obs.ParseTraceparent(traceparents[i]); !ok {
			t.Errorf("request %d: malformed traceparent %q", i, traceparents[i])
		}
	}
}

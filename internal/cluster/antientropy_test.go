package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"kamel/internal/geo"
	"kamel/internal/pyramid"
)

// fakeReplicaStore is an in-memory ReplicaStore for syncer tests: a manifest
// document plus recorded installs, which immediately become visible in the
// manifest (as the real store's commit + publish does).
type fakeReplicaStore struct {
	mu        sync.Mutex
	doc       ManifestDoc
	ok        bool
	installed []IncomingModel
}

func (f *fakeReplicaStore) ManifestDoc() (ManifestDoc, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.doc, f.ok
}

func (f *fakeReplicaStore) ModelPayload(file string) ([]byte, error) {
	return []byte("payload:" + file), nil
}

func (f *fakeReplicaStore) InstallModels(models []IncomingModel) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.installed = append(f.installed, models...)
	for _, m := range models {
		found := false
		for i := range f.doc.Models {
			if f.doc.Models[i].Key == m.Key && f.doc.Models[i].Slot == m.Slot {
				f.doc.Models[i].Meta = m.Meta
				found = true
				break
			}
		}
		if !found {
			f.doc.Models = append(f.doc.Models, ReplicaModel{
				Key: m.Key, Slot: m.Slot, File: "local-" + m.Slot, Meta: m.Meta,
			})
		}
	}
	return len(models), nil
}

// TestClusterAntiEntropySweep drives one syncer against a fake peer: models
// whose peer version is strictly newer are pulled with their payloads and
// installed verbatim; equal/older versions and uncommitted (file-less) models
// are not; and a second sweep after convergence transfers nothing.
func TestClusterAntiEntropySweep(t *testing.T) {
	cfg := pyramid.Config{Root: geo.Rect{MinX: 0, MinY: 0, MaxX: 2000, MaxY: 2000}, H: 2, L: 3, K: 100}
	keyA := pyramid.CellKey{Level: 0, IX: 0, IY: 0}
	keyB := pyramid.CellKey{Level: 1, IX: 1, IY: 0}

	peerDoc := ManifestDoc{
		Shard: "shard-1", Generation: 7,
		OriginLat: 41.15, OriginLng: -8.61,
		Config: cfg,
		Models: []ReplicaModel{
			{Key: keyA, Slot: pyramid.SlotSingle, File: "model-a.g000002.bin", Meta: pyramid.ModelMeta{Version: 2, Tokens: 10}},
			{Key: keyB, Slot: pyramid.SlotSingle, File: "model-b.g000003.bin", Meta: pyramid.ModelMeta{Version: 3, Tokens: 20}},
			{Key: keyB, Slot: pyramid.SlotEast, File: "", Meta: pyramid.ModelMeta{Version: 9}}, // uncommitted: unpullable
		},
	}
	var peerMu sync.Mutex
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/cluster/manifest":
			peerMu.Lock()
			doc := peerDoc
			peerMu.Unlock()
			json.NewEncoder(w).Encode(doc)
		case "/v1/cluster/model":
			w.Write([]byte("peer-bytes:" + r.URL.Query().Get("file")))
		default:
			http.NotFound(w, r)
		}
	}))
	defer peer.Close()

	// Two shards at R=2: every cell's replica group contains both nodes, so
	// the responsibility check passes for any model location.
	m := testMap(1, Shard{ID: "shard-0", Addr: "http://h:1"}, Shard{ID: "shard-1", Addr: peer.URL})
	m.Replicas = 2
	rt, err := New(m, Options{Self: "shard-0", Logger: testLogger()})
	if err != nil {
		t.Fatal(err)
	}

	// Local state: A at the same version (not pulled), B stale at v1 (pulled).
	store := &fakeReplicaStore{ok: true, doc: ManifestDoc{
		Shard: "shard-0", Generation: 3,
		OriginLat: 41.15, OriginLng: -8.61,
		Config: cfg,
		Models: []ReplicaModel{
			{Key: keyA, Slot: pyramid.SlotSingle, File: "model-a.g000001.bin", Meta: pyramid.ModelMeta{Version: 2, Tokens: 10}},
			{Key: keyB, Slot: pyramid.SlotSingle, File: "model-b.g000001.bin", Meta: pyramid.ModelMeta{Version: 1, Tokens: 5}},
		},
	}}
	sy := NewSyncer(rt, store, SyncerOptions{Logger: testLogger()})

	st := sy.SweepOnce(context.Background())
	if st.PeersChecked != 1 || st.Errors != 0 {
		t.Fatalf("sweep stats = %+v, want 1 peer checked, 0 errors", st)
	}
	if st.Pulled != 1 || len(store.installed) != 1 {
		t.Fatalf("pulled %d models (installed %d), want exactly the stale one", st.Pulled, len(store.installed))
	}
	got := store.installed[0]
	if got.Key != keyB || got.Slot != pyramid.SlotSingle || got.Meta.Version != 3 {
		t.Fatalf("installed %v/%s v%d, want %v/single v3", got.Key, got.Slot, got.Meta.Version, keyB)
	}
	if string(got.Payload) != "peer-bytes:model-b.g000003.bin" {
		t.Fatalf("payload %q did not come from the peer's model endpoint", got.Payload)
	}

	// Converged: a second sweep is a no-op.
	st2 := sy.SweepOnce(context.Background())
	if st2.Pulled != 0 || len(store.installed) != 1 {
		t.Fatalf("second sweep pulled %d models, want 0 (idempotent convergence)", st2.Pulled)
	}
	stats := sy.Stats()
	if stats.Sweeps != 2 || stats.Pulled != 1 || stats.PullErrors != 0 {
		t.Fatalf("cumulative stats = %+v, want 2 sweeps, 1 pull, 0 errors", stats)
	}

	// A node with no local repository reconciles nothing (it bootstraps via
	// train traffic instead).
	empty := &fakeReplicaStore{ok: false}
	sy2 := NewSyncer(rt, empty, SyncerOptions{Logger: testLogger()})
	if st := sy2.SweepOnce(context.Background()); st.PeersChecked != 0 || st.Pulled != 0 {
		t.Fatalf("empty-node sweep = %+v, want no-op", st)
	}
}

// TestClusterAntiEntropyResponsibility pins the replica-responsibility gate:
// a model whose cell is NOT replicated on this node is never pulled, however
// new its version, so nodes do not hoard models outside their groups.
func TestClusterAntiEntropyResponsibility(t *testing.T) {
	cfg := pyramid.Config{Root: geo.Rect{MinX: 0, MinY: 0, MaxX: 4000, MaxY: 4000}, H: 2, L: 3, K: 100}
	// Enumerate leaf cells and find ones whose replica group (R=1 over three
	// shards) is exactly the peer — those must be skipped — and ones owned by
	// self or peer jointly; with R=1 the joint condition never holds, so
	// nothing at all may be pulled.
	var models []ReplicaModel
	for ix := 0; ix < 4; ix++ {
		for iy := 0; iy < 4; iy++ {
			models = append(models, ReplicaModel{
				Key:  pyramid.CellKey{Level: 2, IX: ix, IY: iy},
				Slot: pyramid.SlotSingle,
				File: "model-x.bin",
				Meta: pyramid.ModelMeta{Version: 99},
			})
		}
	}
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/cluster/manifest":
			json.NewEncoder(w).Encode(ManifestDoc{
				Shard: "shard-1", OriginLat: 41.15, OriginLng: -8.61,
				Config: cfg, Models: models,
			})
		default:
			w.Write([]byte("bytes"))
		}
	}))
	defer peer.Close()

	m := testMap(1,
		Shard{ID: "shard-0", Addr: "http://h:1"},
		Shard{ID: "shard-1", Addr: peer.URL},
		Shard{ID: "shard-2", Addr: "http://h:3"})
	m.Replicas = 1 // no cell is replicated on two nodes
	rt, err := New(m, Options{Self: "shard-0", Logger: testLogger()})
	if err != nil {
		t.Fatal(err)
	}
	store := &fakeReplicaStore{ok: true, doc: ManifestDoc{
		Shard: "shard-0", OriginLat: 41.15, OriginLng: -8.61, Config: cfg,
	}}
	sy := NewSyncer(rt, store, SyncerOptions{Logger: testLogger()})
	st := sy.SweepOnce(context.Background())
	if st.Pulled != 0 || len(store.installed) != 0 {
		t.Fatalf("R=1 sweep pulled %d models, want 0 (no shared replica groups)", st.Pulled)
	}
	if st.ModelsCompared == 0 {
		t.Fatal("sweep compared no models; test is vacuous")
	}
}

// TestClusterAntiEntropyTokenizerMismatch pins the token-space compatibility
// gate: a peer advertising a different tokenizer spec hash is refused
// entirely — none of its models are pulled, however new their versions —
// while empty hashes (pre-spec nodes) remain compatible for rolling upgrades.
func TestClusterAntiEntropyTokenizerMismatch(t *testing.T) {
	cfg := pyramid.Config{Root: geo.Rect{MinX: 0, MinY: 0, MaxX: 2000, MaxY: 2000}, H: 2, L: 3, K: 100}
	key := pyramid.CellKey{Level: 0, IX: 0, IY: 0}
	peerHash := "feedbead"
	var peerMu sync.Mutex
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/cluster/manifest":
			peerMu.Lock()
			h := peerHash
			peerMu.Unlock()
			json.NewEncoder(w).Encode(ManifestDoc{
				Shard: "shard-1", OriginLat: 41.15, OriginLng: -8.61,
				Config:            cfg,
				TokenizerSpecHash: h,
				Models: []ReplicaModel{{
					Key: key, Slot: pyramid.SlotSingle, File: "model-a.g000009.bin",
					Meta: pyramid.ModelMeta{Version: 9},
				}},
			})
		case "/v1/cluster/model":
			w.Write([]byte("peer-bytes"))
		default:
			http.NotFound(w, r)
		}
	}))
	defer peer.Close()

	m := testMap(1, Shard{ID: "shard-0", Addr: "http://h:1"}, Shard{ID: "shard-1", Addr: peer.URL})
	m.Replicas = 2
	rt, err := New(m, Options{Self: "shard-0", Logger: testLogger()})
	if err != nil {
		t.Fatal(err)
	}
	store := &fakeReplicaStore{ok: true, doc: ManifestDoc{
		Shard: "shard-0", OriginLat: 41.15, OriginLng: -8.61, Config: cfg,
		TokenizerSpecHash: "deadbeef",
	}}
	sy := NewSyncer(rt, store, SyncerOptions{Logger: testLogger()})

	st := sy.SweepOnce(context.Background())
	if st.Pulled != 0 || len(store.installed) != 0 {
		t.Fatalf("mismatched-tokenizer sweep pulled %d models, want 0", st.Pulled)
	}
	if st.TokenizerRejects != 1 {
		t.Fatalf("sweep stats = %+v, want exactly 1 tokenizer reject", st)
	}
	if st.ModelsCompared != 0 {
		t.Fatal("refused peer's models were still compared")
	}

	// Same hash on both sides: the gate opens and the model is pulled.
	peerMu.Lock()
	peerHash = "deadbeef"
	peerMu.Unlock()
	st = sy.SweepOnce(context.Background())
	if st.TokenizerRejects != 0 || st.Pulled != 1 {
		t.Fatalf("matched-tokenizer sweep = %+v, want 1 pull and no rejects", st)
	}

	// A peer predating specs (empty hash) stays compatible: rolling upgrades
	// must not partition the fleet.
	peerMu.Lock()
	peerHash = ""
	peerMu.Unlock()
	if st := sy.SweepOnce(context.Background()); st.TokenizerRejects != 0 {
		t.Fatalf("empty-hash peer rejected: %+v", st)
	}
}

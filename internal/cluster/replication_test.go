package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"kamel/internal/geo"
	"kamel/internal/grid"
)

// TestClusterRendezvousRank checks the ordered candidate list the replica
// groups are built from: the first entry is the rendezvous owner, the list is
// deterministic and roster-order independent, members are distinct, and
// removing the primary promotes the rest of the list element-wise (the N-way
// extension of rendezvous hashing's minimal-disruption property).
func TestClusterRendezvousRank(t *testing.T) {
	ids := []string{"shard-0", "shard-1", "shard-2", "shard-3", "shard-4"}
	rev := []string{"shard-4", "shard-3", "shard-2", "shard-1", "shard-0"}
	for i := 0; i < 500; i++ {
		c := grid.Cell(int64(i)*2654435761 ^ int64(i)<<32)
		rank := rendezvousRank(ids, c, 3)
		if len(rank) != 3 {
			t.Fatalf("rank length %d, want 3", len(rank))
		}
		if rank[0] != rendezvousOwner(ids, c) {
			t.Fatalf("rank[0] %q != owner %q for cell %v", rank[0], rendezvousOwner(ids, c), c)
		}
		seen := map[string]bool{}
		for _, id := range rank {
			if seen[id] {
				t.Fatalf("duplicate member %q in group %v", id, rank)
			}
			seen[id] = true
		}
		for j, id := range rendezvousRank(rev, c, 3) {
			if rank[j] != id {
				t.Fatalf("rank depends on roster order: %v vs reversed", rank)
			}
		}
		// Remove the primary: the remaining members shift up one, and exactly
		// one new member joins at the tail.
		var without []string
		for _, id := range ids {
			if id != rank[0] {
				without = append(without, id)
			}
		}
		promoted := rendezvousRank(without, c, 3)
		if promoted[0] != rank[1] || promoted[1] != rank[2] {
			t.Fatalf("removing primary %q did not promote tail: %v -> %v", rank[0], rank, promoted)
		}
	}

	// n clamps to the roster on both ends.
	c := grid.Cell(42)
	if got := rendezvousRank(ids, c, 99); len(got) != len(ids) {
		t.Errorf("rank n=99 returned %d members, want %d", len(got), len(ids))
	}
	if got := rendezvousRank(ids, c, 0); len(got) != 1 {
		t.Errorf("rank n=0 returned %d members, want 1", len(got))
	}
}

// TestClusterMapReplicas pins Map.Replicas semantics: validation bounds and
// the ReplicaCount clamp (0 means 1; never more than the roster).
func TestClusterMapReplicas(t *testing.T) {
	m := testMap(1, Shard{ID: "a", Addr: "http://h:1"}, Shard{ID: "b", Addr: "http://h:2"})
	if got := m.ReplicaCount(); got != 1 {
		t.Errorf("unset replicas count = %d, want 1", got)
	}
	m.Replicas = 2
	if err := m.Validate(); err != nil {
		t.Fatalf("R=2 over 2 shards rejected: %v", err)
	}
	if got := m.ReplicaCount(); got != 2 {
		t.Errorf("replica count = %d, want 2", got)
	}
	m.Replicas = 3
	if err := m.Validate(); err == nil {
		t.Error("R=3 over 2 shards must fail validation")
	}
	m.Replicas = -1
	if err := m.Validate(); err == nil {
		t.Error("negative replicas must fail validation")
	}
}

// TestClusterReplicaGroup checks the router's group resolution: the group has
// ReplicaCount members led by the owner, agrees across nodes, and an empty
// trajectory collapses to self.
func TestClusterReplicaGroup(t *testing.T) {
	m := testMap(1,
		Shard{ID: "shard-0", Addr: "http://h:1"},
		Shard{ID: "shard-1", Addr: "http://h:2"},
		Shard{ID: "shard-2", Addr: "http://h:3"})
	m.Replicas = 2
	r0, err := New(m, Options{Self: "shard-0", Logger: testLogger()})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := New(m, Options{Self: "shard-1", Logger: testLogger()})
	if err != nil {
		t.Fatal(err)
	}
	pts := []geo.Point{
		{Lat: 41.16, Lng: -8.60, T: 0},
		{Lat: 41.161, Lng: -8.599, T: 60},
	}
	g0, c0, ok := r0.ReplicaGroup(pts)
	if !ok || len(g0) != 2 {
		t.Fatalf("group = %v ok=%v, want 2 members", g0, ok)
	}
	owner, _, _ := r0.Owner(pts)
	if g0[0] != owner {
		t.Fatalf("group %v not led by owner %q", g0, owner)
	}
	g1, _, _ := r1.ReplicaGroup(pts)
	if len(g1) != 2 || g1[0] != g0[0] || g1[1] != g0[1] {
		t.Fatalf("nodes disagree on replica group: %v vs %v", g0, g1)
	}
	if got := r0.ReplicasOfCell(c0); len(got) != 2 || got[0] != g0[0] {
		t.Fatalf("ReplicasOfCell = %v, want %v", got, g0)
	}
	if g, _, ok := r0.ReplicaGroup(nil); ok || len(g) != 1 || g[0] != "shard-0" {
		t.Fatalf("empty trajectory group = %v ok=%v, want [self] and ok=false", g, ok)
	}
}

// TestClusterForwardBusyClassification pins satellite behaviour: an active
// refusal (429 overloaded, 409 not trained) is returned immediately as
// ErrPeerBusy — exactly one attempt, no retry, no unhealthy marking — while
// other 4xx pass through as ordinary responses.
func TestClusterForwardBusyClassification(t *testing.T) {
	var calls atomic.Int64
	status := atomic.Int64{}
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		code := int(status.Load())
		w.WriteHeader(code)
		fmt.Fprintf(w, `{"error":{"code":"x","message":"status %d"}}`, code)
	}))
	defer peer.Close()

	m := testMap(1, Shard{ID: "shard-0", Addr: "http://h:1"}, Shard{ID: "shard-1", Addr: peer.URL})
	rt, err := New(m, Options{
		Self: "shard-0", Retries: 3, RetryBackoff: time.Millisecond,
		Logger: testLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}

	for _, code := range []int{http.StatusTooManyRequests, http.StatusConflict} {
		calls.Store(0)
		status.Store(int64(code))
		res, err := rt.Forward(context.Background(), "shard-1", "/v1/impute", []byte(`{}`))
		if !errors.Is(err, ErrPeerBusy) {
			t.Fatalf("status %d error = %v, want ErrPeerBusy", code, err)
		}
		if res.Status != code || len(res.Body) == 0 {
			t.Fatalf("status %d: refusal response %d %q not handed back", code, res.Status, res.Body)
		}
		if got := calls.Load(); got != 1 {
			t.Fatalf("status %d: peer saw %d calls, want exactly 1 (no retry)", code, got)
		}
		if !rt.Healthy("shard-1") {
			t.Fatalf("status %d: busy peer must stay healthy", code)
		}
	}
	st := rt.ClusterStats()
	if st.Retries != 0 || st.ForwardErrors != 0 {
		t.Errorf("stats = %+v, want no retries and no forward errors for refusals", st)
	}

	// An ordinary client error is not a refusal: it passes through with a nil
	// error and still consumes no retries.
	calls.Store(0)
	status.Store(http.StatusBadRequest)
	res, err := rt.Forward(context.Background(), "shard-1", "/v1/impute", []byte(`{}`))
	if err != nil || res.Status != http.StatusBadRequest {
		t.Fatalf("400 forward = %d/%v, want passthrough with nil error", res.Status, err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("400: peer saw %d calls, want 1", got)
	}
}

// TestClusterForwardWriteSingleAttempt pins the non-idempotent write path:
// one attempt only, even against a 500-answering peer with retry budget.
func TestClusterForwardWriteSingleAttempt(t *testing.T) {
	var calls atomic.Int64
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer peer.Close()

	m := testMap(1, Shard{ID: "shard-0", Addr: "http://h:1"}, Shard{ID: "shard-1", Addr: peer.URL})
	rt, err := New(m, Options{Self: "shard-0", Retries: 3, RetryBackoff: time.Millisecond, Logger: testLogger()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.ForwardWrite(context.Background(), "shard-1", "/v1/train", []byte(`[]`)); !errors.Is(err, ErrPeerUnavailable) {
		t.Fatalf("write to failing peer = %v, want ErrPeerUnavailable", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("peer saw %d calls, want exactly 1 (writes are never retried)", got)
	}
}

// TestClusterForwardAnyFailover walks the replica failover: a dead primary is
// skipped, the next replica serves, the failover counter moves, and self
// entries are never dialed.
func TestClusterForwardAnyFailover(t *testing.T) {
	var served atomic.Int64
	alive := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		fmt.Fprint(w, `{"ok":true}`)
	}))
	defer alive.Close()
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // already down

	m := testMap(1,
		Shard{ID: "shard-0", Addr: "http://h:1"},
		Shard{ID: "shard-1", Addr: dead.URL},
		Shard{ID: "shard-2", Addr: alive.URL})
	rt, err := New(m, Options{Self: "shard-0", Retries: 0, RetryBackoff: time.Millisecond, Logger: testLogger()})
	if err != nil {
		t.Fatal(err)
	}

	res, servedBy, err := rt.ForwardAny(context.Background(), []string{"shard-0", "shard-1", "shard-2"}, "/v1/impute", []byte(`{}`))
	if err != nil {
		t.Fatalf("failover forward: %v", err)
	}
	if servedBy != "shard-2" || res.Status != http.StatusOK {
		t.Fatalf("served by %q status %d, want the live replica shard-2", servedBy, res.Status)
	}
	if served.Load() != 1 {
		t.Fatalf("live replica saw %d calls, want 1", served.Load())
	}
	if st := rt.ClusterStats(); st.Failovers != 1 {
		t.Errorf("failovers = %d, want 1 (moved past the dead primary)", st.Failovers)
	}

	// Group of only self and dead members: typed unavailability.
	if _, _, err := rt.ForwardAny(context.Background(), []string{"shard-0", "shard-1"}, "/v1/impute", nil); !errors.Is(err, ErrPeerUnavailable) {
		t.Fatalf("all-dead group error = %v, want ErrPeerUnavailable", err)
	}
	if _, _, err := rt.ForwardAny(context.Background(), []string{"shard-0"}, "/v1/impute", nil); !errors.Is(err, ErrPeerUnavailable) {
		t.Fatalf("self-only group error = %v, want ErrPeerUnavailable", err)
	}
}

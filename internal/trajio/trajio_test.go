package trajio

import (
	"bytes"
	"strings"
	"testing"

	"kamel/internal/geo"
)

func TestRoundTrip(t *testing.T) {
	in := []geo.Trajectory{
		{ID: "a", Points: []geo.Point{{Lat: 41.1, Lng: -8.6, T: 1}, {Lat: 41.2, Lng: -8.5, T: 2}}},
		{ID: "b", Points: []geo.Point{{Lat: -6.2, Lng: 106.8, T: 100}}},
	}
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("got %d trajectories", len(out))
	}
	for i := range in {
		if out[i].ID != in[i].ID || len(out[i].Points) != len(in[i].Points) {
			t.Fatalf("trajectory %d mismatch", i)
		}
		for j := range in[i].Points {
			if out[i].Points[j] != in[i].Points[j] {
				t.Errorf("point %d/%d mismatch", i, j)
			}
		}
	}
}

func TestReadSkipsBlankLines(t *testing.T) {
	src := `{"id":"x","points":[[1,2,3]]}

{"id":"y","points":[[4,5,6]]}
`
	out, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Errorf("got %d trajectories, want 2", len(out))
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not json\n")); err == nil {
		t.Error("garbage must be rejected")
	}
	if out, err := Read(strings.NewReader("")); err != nil || len(out) != 0 {
		t.Error("empty input must be empty, not an error")
	}
}

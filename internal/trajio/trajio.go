// Package trajio reads and writes trajectories as JSON Lines, the
// interchange format of the command-line tools and examples: one JSON object
// per line with an id and an array of [lat, lng, unixSeconds] points.
package trajio

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"kamel/internal/geo"
)

// record is the wire form of one trajectory.
type record struct {
	ID     string       `json:"id"`
	Points [][3]float64 `json:"points"`
}

// Write emits trajectories as JSON Lines.
func Write(w io.Writer, trajs []geo.Trajectory) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, tr := range trajs {
		rec := record{ID: tr.ID, Points: make([][3]float64, len(tr.Points))}
		for i, p := range tr.Points {
			rec.Points[i] = [3]float64{p.Lat, p.Lng, p.T}
		}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("trajio: encoding %q: %w", tr.ID, err)
		}
	}
	return bw.Flush()
}

// Read parses JSON Lines trajectories until EOF.
func Read(r io.Reader) ([]geo.Trajectory, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	var out []geo.Trajectory
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec record
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("trajio: line %d: %w", line, err)
		}
		tr := geo.Trajectory{ID: rec.ID, Points: make([]geo.Point, len(rec.Points))}
		for i, p := range rec.Points {
			tr.Points[i] = geo.Point{Lat: p[0], Lng: p[1], T: p[2]}
		}
		out = append(out, tr)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trajio: scanning: %w", err)
	}
	return out, nil
}

package store

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"kamel/internal/geo"
	"kamel/internal/grid"
)

func proj() *geo.Projection { return geo.NewProjection(41.15, -8.61) }

// mkTraj builds a trajectory of n points walking east from (x0,y0), one
// token per point using a 75m hex grid.
func mkTraj(id string, x0, y0 float64, n int) Traj {
	pr := proj()
	g := grid.NewHex(75)
	tr := Traj{ID: id}
	for i := 0; i < n; i++ {
		xy := geo.XY{X: x0 + float64(i)*30, Y: y0}
		p := pr.ToLatLng(xy)
		p.T = float64(i)
		tr.Points = append(tr.Points, p)
		tr.Tokens = append(tr.Tokens, g.CellAt(xy))
	}
	return tr
}

func TestAppendAndQuery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, proj())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if err := s.Append(mkTraj("a", 0, 0, 10)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(mkTraj("b", 5000, 5000, 10)); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.TotalTokens() != 20 {
		t.Fatalf("TotalTokens = %d", s.TotalTokens())
	}

	got := s.QueryEnclosed(geo.Rect{MinX: -100, MinY: -100, MaxX: 1000, MaxY: 1000})
	if len(got) != 1 || got[0].ID != "a" {
		t.Fatalf("QueryEnclosed returned %d records", len(got))
	}
	// A rect that clips trajectory "a" must not return it (fully-enclosed
	// semantics).
	got = s.QueryEnclosed(geo.Rect{MinX: -100, MinY: -100, MaxX: 100, MaxY: 100})
	if len(got) != 0 {
		t.Fatal("partially covered trajectory must not be returned")
	}
}

func TestTokensInRect(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, proj())
	defer s.Close()
	s.Append(mkTraj("a", 0, 0, 10)) // points at x = 0,30,...,270

	full := s.TokensInRect(geo.Rect{MinX: -10, MinY: -10, MaxX: 1000, MaxY: 10})
	if full != 10 {
		t.Errorf("full count = %d, want 10", full)
	}
	half := s.TokensInRect(geo.Rect{MinX: -10, MinY: -10, MaxX: 125, MaxY: 10})
	if half != 5 { // x = 0, 30, 60, 90, 120
		t.Errorf("half count = %d, want 5", half)
	}
	none := s.TokensInRect(geo.Rect{MinX: 5000, MinY: 5000, MaxX: 6000, MaxY: 6000})
	if none != 0 {
		t.Errorf("disjoint count = %d, want 0", none)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, proj())
	for i := 0; i < 20; i++ {
		if err := s.Append(mkTraj(fmt.Sprintf("t%d", i), float64(i)*100, 0, 5)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(dir, proj())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 20 {
		t.Fatalf("reopened store has %d records, want 20", s2.Len())
	}
	var ids []string
	s2.All(func(tr Traj) bool {
		ids = append(ids, tr.ID)
		return true
	})
	if len(ids) != 20 || ids[0] != "t0" || ids[19] != "t19" {
		t.Errorf("record order not preserved: %v", ids)
	}
	// Points survive byte-exactly.
	want := mkTraj("t0", 0, 0, 5)
	var got Traj
	s2.All(func(tr Traj) bool { got = tr; return false })
	for i := range want.Points {
		if got.Points[i] != want.Points[i] || got.Tokens[i] != want.Tokens[i] {
			t.Fatalf("record t0 corrupted at %d", i)
		}
	}
}

func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, proj())
	s.Append(mkTraj("good1", 0, 0, 5))
	s.Append(mkTraj("good2", 500, 0, 5))
	s.Close()

	// Simulate a crash mid-append: chop bytes off the segment tail.
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if len(segs) == 0 {
		t.Fatal("no segment files written")
	}
	info, _ := os.Stat(segs[0])
	if err := os.Truncate(segs[0], info.Size()-7); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, proj())
	if err != nil {
		t.Fatalf("torn tail must not fail open: %v", err)
	}
	defer s2.Close()
	if s2.Len() != 1 {
		t.Fatalf("recovered %d records, want 1 (the intact one)", s2.Len())
	}
	// The store must be writable after recovery.
	if err := s2.Append(mkTraj("after", 1000, 0, 5)); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptPayloadDetected(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, proj())
	s.Append(mkTraj("a", 0, 0, 5))
	s.Append(mkTraj("b", 500, 0, 5))
	s.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	f, _ := os.OpenFile(segs[0], os.O_RDWR, 0)
	// Flip a byte inside the first record's payload.
	f.WriteAt([]byte{0xFF}, 20)
	f.Close()

	s2, err := Open(dir, proj())
	if err != nil {
		t.Fatalf("corruption must not fail open: %v", err)
	}
	defer s2.Close()
	// The corrupt record is skipped and counted; the intact record after it
	// in the same segment survives.
	if s2.Len() != 1 {
		t.Fatalf("recovered %d records from corrupt segment, want 1", s2.Len())
	}
	var got Traj
	s2.All(func(tr Traj) bool { got = tr; return false })
	if got.ID != "b" {
		t.Errorf("surviving record %q, want \"b\"", got.ID)
	}
	if s2.CorruptRecords() != 1 {
		t.Errorf("CorruptRecords() = %d, want 1", s2.CorruptRecords())
	}
}

// TestFaultMidSegmentCorruptionSkip covers the bit-rot case the replay path
// distinguishes from a torn tail: a corrupt record buried under good ones is
// skipped with a count, while a torn tail is still truncated away.
func TestFaultMidSegmentCorruptionSkip(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, proj())
	s.Append(mkTraj("a", 0, 0, 5))
	s.Append(mkTraj("b", 500, 0, 5))
	s.Append(mkTraj("c", 1000, 0, 5))
	s.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the middle record.  Records are identically
	// sized, so record 2 starts at a third of the file.
	recLen := len(raw) / 3
	raw[recLen+8+2] ^= 0xFF
	// And tear the tail: chop half of record 3.
	raw = raw[:2*recLen+recLen/2]
	if err := os.WriteFile(segs[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, proj())
	if err != nil {
		t.Fatalf("open after mixed corruption: %v", err)
	}
	defer s2.Close()
	if s2.Len() != 1 {
		t.Fatalf("recovered %d records, want 1 (first intact)", s2.Len())
	}
	var got Traj
	s2.All(func(tr Traj) bool { got = tr; return false })
	if got.ID != "a" {
		t.Errorf("surviving record %q, want \"a\"", got.ID)
	}
	if s2.CorruptRecords() != 1 {
		t.Errorf("CorruptRecords() = %d, want 1", s2.CorruptRecords())
	}
	// The store stays writable, and a further reopen is stable.
	if err := s2.Append(mkTraj("after", 1500, 0, 5)); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir, proj())
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.Len() != 2 {
		t.Errorf("after reopen: %d records, want 2", s3.Len())
	}
}

func TestAppendValidation(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, proj())
	defer s.Close()
	if err := s.Append(Traj{ID: "empty"}); err == nil {
		t.Error("empty trajectory must be rejected")
	}
	bad := mkTraj("bad", 0, 0, 5)
	bad.Tokens = bad.Tokens[:3]
	if err := s.Append(bad); err == nil {
		t.Error("mismatched points/tokens must be rejected")
	}
}

func TestSegmentRollover(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, proj())
	// Each record is ~ 5 points × 24B ≈ small; write big trajectories to
	// force a roll.  4MB / (1000 points × 32B) ≈ 125 records.
	for i := 0; i < 140; i++ {
		if err := s.Append(mkTraj(fmt.Sprintf("big%d", i), 0, float64(i), 1000)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if len(segs) < 2 {
		t.Errorf("expected multiple segments, got %d", len(segs))
	}
	s2, err := Open(dir, proj())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 140 {
		t.Errorf("reopened %d records, want 140", s2.Len())
	}
}

func TestBounds(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, proj())
	defer s.Close()
	if !s.Bounds().IsEmpty() {
		t.Error("empty store must have empty bounds")
	}
	s.Append(mkTraj("a", 0, 0, 10))
	b := s.Bounds()
	if b.Width() < 200 {
		t.Errorf("bounds too small: %v", b)
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(t.TempDir(), nil); err == nil {
		t.Error("nil projection must be rejected")
	}
}

// Package store implements KAMEL's trajectory store (paper §4): the durable
// repository of tokenized training trajectories that the Partitioning module
// reads when building or enriching BERT models, and that the Detokenization
// module mines for per-token point clusters.
//
// Records are persisted in append-only segment files of length-prefixed,
// CRC-checksummed binary records; an in-memory table of record metadata
// (MBR, token count) serves the spatial queries.  Opening a store replays
// the segments, verifying every checksum: a torn tail write is truncated
// away, and a corrupt record in the middle of a segment (bit rot) is
// skipped and counted (CorruptRecords) rather than aborting the replay —
// the crash-recovery behaviour an append-only log is chosen for.  Segments
// are fsynced before roll-over and on Close, so only the actively written
// tail is ever at risk.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"kamel/internal/geo"
	"kamel/internal/grid"
)

// Traj is a tokenized trajectory: raw GPS points plus the grid token of each
// point under the store's tokenization grid.
type Traj struct {
	ID     string
	Points []geo.Point
	Tokens []grid.Cell // parallel to Points
}

// segmentMaxBytes is the roll-over threshold for segment files.
const segmentMaxBytes = 4 << 20

// recordMeta is the in-memory index entry for one persisted trajectory.
type recordMeta struct {
	mbr    geo.Rect
	tokens int
}

// Store is a durable, append-only trajectory store.  All methods are safe
// for concurrent use.
type Store struct {
	mu   sync.RWMutex
	dir  string
	proj *geo.Projection

	recs  []Traj
	metas []recordMeta

	seg      *os.File
	segIdx   int
	segBytes int64

	corrupt int // mid-segment records skipped during replay
}

// Open opens (creating if necessary) a store in dir.  Existing segments are
// replayed; a torn final record (from a crash mid-append) is truncated away.
// The projection defines the planar frame used for spatial queries.
func Open(dir string, proj *geo.Projection) (*Store, error) {
	if proj == nil {
		return nil, fmt.Errorf("store: nil projection")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	s := &Store{dir: dir, proj: proj}
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	for _, name := range names {
		if err := s.replay(name); err != nil {
			return nil, err
		}
	}
	s.segIdx = len(names)
	if err := s.rollSegment(); err != nil {
		return nil, err
	}
	return s, nil
}

// rollSegment closes the current segment (if any) and starts a new one.
// The outgoing segment is fsynced first: once a segment is rolled over it is
// immutable, so this is the last chance to make its tail durable.
func (s *Store) rollSegment() error {
	if s.seg != nil {
		if err := s.seg.Sync(); err != nil {
			return fmt.Errorf("store: syncing rolled-over segment: %w", err)
		}
		if err := s.seg.Close(); err != nil {
			return err
		}
	}
	name := filepath.Join(s.dir, fmt.Sprintf("seg-%06d.log", s.segIdx))
	f, err := os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: opening segment: %w", err)
	}
	s.seg = f
	s.segIdx++
	s.segBytes = 0
	return nil
}

// replay loads one segment file.  A torn or short record at the tail (the
// crash-mid-append case) is truncated away; a corrupt record with an intact
// length field in the middle of the segment (bit rot under good records) is
// skipped with a counted warning so the records after it survive.  An
// implausible length field leaves no way to find the next record boundary,
// so the rest of the segment is dropped like a torn tail.
func (s *Store) replay(name string) error {
	f, err := os.Open(name)
	if err != nil {
		return err
	}
	defer f.Close()

	var offset int64
	head := make([]byte, 8)
	for {
		if _, err := io.ReadFull(f, head); err != nil {
			if err == io.EOF {
				return nil
			}
			return s.truncateTail(name, offset)
		}
		length := binary.LittleEndian.Uint32(head[:4])
		sum := binary.LittleEndian.Uint32(head[4:8])
		if length > 64<<20 {
			return s.truncateTail(name, offset)
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			return s.truncateTail(name, offset)
		}
		if crc32.ChecksumIEEE(payload) != sum {
			s.skipCorrupt(name, offset, "checksum mismatch")
		} else if tr, err := decodeTraj(payload); err != nil {
			s.skipCorrupt(name, offset, err.Error())
		} else {
			s.index(tr)
		}
		offset += 8 + int64(length)
	}
}

// skipCorrupt counts and warns about a mid-segment record that failed its
// integrity checks and is being skipped.
func (s *Store) skipCorrupt(name string, offset int64, reason string) {
	s.corrupt++
	slog.Warn("skipping corrupt record",
		"component", "store", "segment", name, "offset", offset, "reason", reason)
}

// CorruptRecords returns the number of corrupt mid-segment records skipped
// while replaying the store's segments at Open time.
func (s *Store) CorruptRecords() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.corrupt
}

// truncateTail cuts a segment file back to the last valid record boundary.
func (s *Store) truncateTail(name string, validBytes int64) error {
	return os.Truncate(name, validBytes)
}

// index adds a record to the in-memory table.
func (s *Store) index(tr Traj) {
	mbr := geo.EmptyRect()
	for _, p := range tr.Points {
		mbr = mbr.ExtendXY(s.proj.ToXY(p))
	}
	s.recs = append(s.recs, tr)
	s.metas = append(s.metas, recordMeta{mbr: mbr, tokens: len(tr.Tokens)})
}

// Append durably persists a trajectory and makes it visible to queries.
func (s *Store) Append(tr Traj) error {
	if len(tr.Points) == 0 {
		return fmt.Errorf("store: refusing to append empty trajectory %q", tr.ID)
	}
	if len(tr.Points) != len(tr.Tokens) {
		return fmt.Errorf("store: trajectory %q has %d points but %d tokens", tr.ID, len(tr.Points), len(tr.Tokens))
	}
	payload := encodeTraj(tr)
	head := make([]byte, 8)
	binary.LittleEndian.PutUint32(head[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(head[4:8], crc32.ChecksumIEEE(payload))

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.segBytes >= segmentMaxBytes {
		if err := s.rollSegment(); err != nil {
			return err
		}
	}
	if _, err := s.seg.Write(head); err != nil {
		return fmt.Errorf("store: writing record header: %w", err)
	}
	if _, err := s.seg.Write(payload); err != nil {
		return fmt.Errorf("store: writing record payload: %w", err)
	}
	s.segBytes += int64(8 + len(payload))
	s.index(tr)
	return nil
}

// Sync flushes pending writes to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seg.Sync()
}

// Close flushes the active segment to stable storage and releases the
// store's file handles.  Close is idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seg == nil {
		return nil
	}
	syncErr := s.seg.Sync()
	closeErr := s.seg.Close()
	s.seg = nil
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// Projection returns the planar projection the store indexes under.
func (s *Store) Projection() *geo.Projection { return s.proj }

// Len returns the number of stored trajectories.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.recs)
}

// TotalTokens returns the number of tokens across all stored trajectories.
func (s *Store) TotalTokens() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int
	for _, m := range s.metas {
		n += m.tokens
	}
	return n
}

// Bounds returns the MBR of everything stored.
func (s *Store) Bounds() geo.Rect {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r := geo.EmptyRect()
	for _, m := range s.metas {
		r = r.Union(m.mbr)
	}
	return r
}

// QueryEnclosed returns the trajectories whose MBR lies fully inside rect —
// the retrieval the Partitioning module performs when assembling a model's
// training corpus (paper §4.2).
func (s *Store) QueryEnclosed(rect geo.Rect) []Traj {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Traj
	for i, m := range s.metas {
		if rect.ContainsRect(m.mbr) {
			out = append(out, s.recs[i])
		}
	}
	return out
}

// TokensInRect counts the stored GPS points (= token occurrences) lying
// inside rect, the statistic the pyramid's model-build thresholds are
// defined over (paper §4.1).
func (s *Store) TokensInRect(rect geo.Rect) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int
	for i, m := range s.metas {
		if !rect.Intersects(m.mbr) {
			continue
		}
		if rect.ContainsRect(m.mbr) {
			n += m.tokens
			continue
		}
		for _, p := range s.recs[i].Points {
			if rect.ContainsXY(s.proj.ToXY(p)) {
				n++
			}
		}
	}
	return n
}

// All invokes fn for every stored trajectory until fn returns false.  The
// callback must not retain the trajectory's slices beyond the call.
func (s *Store) All(fn func(Traj) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, tr := range s.recs {
		if !fn(tr) {
			return
		}
	}
}

// encodeTraj serializes one trajectory record:
//
//	u16 idLen | id | u32 nPoints | nPoints × (f64 lat, f64 lng, f64 t) |
//	u32 nTokens | nTokens × i64
func encodeTraj(tr Traj) []byte {
	size := 2 + len(tr.ID) + 4 + 24*len(tr.Points) + 4 + 8*len(tr.Tokens)
	buf := make([]byte, 0, size)
	var scratch [8]byte

	binary.LittleEndian.PutUint16(scratch[:2], uint16(len(tr.ID)))
	buf = append(buf, scratch[:2]...)
	buf = append(buf, tr.ID...)

	binary.LittleEndian.PutUint32(scratch[:4], uint32(len(tr.Points)))
	buf = append(buf, scratch[:4]...)
	for _, p := range tr.Points {
		for _, v := range [3]float64{p.Lat, p.Lng, p.T} {
			binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(v))
			buf = append(buf, scratch[:]...)
		}
	}
	binary.LittleEndian.PutUint32(scratch[:4], uint32(len(tr.Tokens)))
	buf = append(buf, scratch[:4]...)
	for _, c := range tr.Tokens {
		binary.LittleEndian.PutUint64(scratch[:], uint64(c))
		buf = append(buf, scratch[:]...)
	}
	return buf
}

// decodeTraj is the inverse of encodeTraj.
func decodeTraj(buf []byte) (Traj, error) {
	var tr Traj
	if len(buf) < 2 {
		return tr, fmt.Errorf("store: record too short")
	}
	idLen := int(binary.LittleEndian.Uint16(buf[:2]))
	buf = buf[2:]
	if len(buf) < idLen+4 {
		return tr, fmt.Errorf("store: truncated id")
	}
	tr.ID = string(buf[:idLen])
	buf = buf[idLen:]

	nPts := int(binary.LittleEndian.Uint32(buf[:4]))
	buf = buf[4:]
	if len(buf) < 24*nPts+4 {
		return tr, fmt.Errorf("store: truncated points")
	}
	tr.Points = make([]geo.Point, nPts)
	for i := range tr.Points {
		tr.Points[i].Lat = math.Float64frombits(binary.LittleEndian.Uint64(buf[:8]))
		tr.Points[i].Lng = math.Float64frombits(binary.LittleEndian.Uint64(buf[8:16]))
		tr.Points[i].T = math.Float64frombits(binary.LittleEndian.Uint64(buf[16:24]))
		buf = buf[24:]
	}
	nTok := int(binary.LittleEndian.Uint32(buf[:4]))
	buf = buf[4:]
	if len(buf) < 8*nTok {
		return tr, fmt.Errorf("store: truncated tokens")
	}
	tr.Tokens = make([]grid.Cell, nTok)
	for i := range tr.Tokens {
		tr.Tokens[i] = grid.Cell(binary.LittleEndian.Uint64(buf[:8]))
		buf = buf[8:]
	}
	return tr, nil
}

package store

import (
	"fmt"
	"sync"
	"testing"

	"kamel/internal/geo"
)

// TestConcurrentAppendAndQuery exercises the store under parallel writers
// and readers; the race detector (go test -race) validates the locking.
func TestConcurrentAppendAndQuery(t *testing.T) {
	s, err := Open(t.TempDir(), proj())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const writers = 4
	const perWriter = 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				tr := mkTraj(fmt.Sprintf("w%d-%d", w, i), float64(w)*1000, float64(i)*10, 5)
				if err := s.Append(tr); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// Concurrent readers.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s.Len()
				s.TokensInRect(geo.Rect{MinX: -100, MinY: -100, MaxX: 5000, MaxY: 5000})
				s.QueryEnclosed(geo.Rect{MinX: -100, MinY: -100, MaxX: 500, MaxY: 500})
			}
		}()
	}
	wg.Wait()
	if s.Len() != writers*perWriter {
		t.Errorf("stored %d records, want %d", s.Len(), writers*perWriter)
	}
	// Everything must survive a reopen.
	s.Close()
	s2, err := Open(s.dir, proj())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != writers*perWriter {
		t.Errorf("reopened %d records, want %d", s2.Len(), writers*perWriter)
	}
}

// TestAllEarlyStop verifies the iteration callback contract.
func TestAllEarlyStop(t *testing.T) {
	s, _ := Open(t.TempDir(), proj())
	defer s.Close()
	for i := 0; i < 5; i++ {
		s.Append(mkTraj(fmt.Sprintf("t%d", i), float64(i)*100, 0, 3))
	}
	count := 0
	s.All(func(Traj) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("All visited %d records after early stop, want 3", count)
	}
}

package eval

import (
	"fmt"
	"time"

	"kamel/internal/baseline"
	"kamel/internal/core"
	"kamel/internal/geo"
	"kamel/internal/metrics"
	"kamel/internal/pyramid"
)

// SparsenessValues is the paper's Fig 9 sweep (meters).
var SparsenessValues = []float64{500, 1000, 1500, 2000, 2500, 3000, 3500, 4000}

// ThresholdValues is the paper's Fig 10 sweep of δ (meters).
var ThresholdValues = []float64{5, 10, 25, 50, 75, 100}

// RunSparseness reproduces Fig 9(a-f): recall, precision, and failure rate
// versus Sparse_distance for KAMEL, TrImpute, linear interpolation, and the
// map-matching reference, on both datasets.
func (r *Runner) RunSparseness(datasets []string, sweep []float64) ([]Row, error) {
	if len(sweep) == 0 {
		sweep = SparsenessValues
	}
	var rows []Row
	for _, ds := range datasets {
		ts, sc, err := r.kamelFor(ds)
		if err != nil {
			return nil, err
		}
		tr, _ := trimputeFor(sc)
		methods := []baseline.Imputer{
			ts.sys,
			tr,
			&baseline.Linear{Proj: sc.Proj, StepMeters: r.Opts.MaxGapM},
			baseline.NewMapMatch(sc.Proj, sc.Net),
		}
		tests := r.testSlice(sc)
		delta := r.delta(ds)
		for _, sparse := range sweep {
			for _, m := range methods {
				acc, stats, secs, err := r.measure(sc, m, tests, sparse, delta)
				if err != nil {
					return nil, err
				}
				r.logf("fig9 %s %s sparse=%.0f: recall=%.3f precision=%.3f fail=%.3f (%.1fs)",
					ds, m.Name(), sparse, acc.Recall(), acc.Precision(), stats.FailureRate(), secs)
				rows = append(rows, Row{
					Experiment: "fig9", Dataset: ds, Method: m.Name(),
					XLabel: "sparseness_m", X: sparse,
					Recall: acc.Recall(), Precision: acc.Precision(),
					FailRate: stats.FailureRate(), Seconds: secs,
				})
			}
		}
	}
	return rows, nil
}

// RunThreshold reproduces Fig 10(a-d): recall and precision versus the
// accuracy threshold δ at the paper's default sparseness (1 km).  Each
// method imputes once; only the metric threshold varies.
func (r *Runner) RunThreshold(datasets []string, sweep []float64) ([]Row, error) {
	if len(sweep) == 0 {
		sweep = ThresholdValues
	}
	const sparse = 1000
	var rows []Row
	for _, ds := range datasets {
		ts, sc, err := r.kamelFor(ds)
		if err != nil {
			return nil, err
		}
		tr, _ := trimputeFor(sc)
		methods := []baseline.Imputer{
			ts.sys,
			tr,
			&baseline.Linear{Proj: sc.Proj, StepMeters: r.Opts.MaxGapM},
			baseline.NewMapMatch(sc.Proj, sc.Net),
		}
		tests := r.testSlice(sc)
		for _, m := range methods {
			// Impute once per method, evaluate at every δ.
			type pair struct{ truth, dense geo.Trajectory }
			var imputed []pair
			var stats baseline.Stats
			for _, truth := range tests {
				dense, st, err := m.Impute(truth.Sparsify(sparse))
				if err != nil {
					return nil, err
				}
				stats.Add(st)
				imputed = append(imputed, pair{truth, dense})
			}
			for _, delta := range sweep {
				var acc metrics.Accumulator
				for _, p := range imputed {
					acc.Add(metrics.Evaluate(sc.Proj, p.truth, p.dense, r.Opts.MaxGapM, delta))
				}
				rows = append(rows, Row{
					Experiment: "fig10", Dataset: ds, Method: m.Name(),
					XLabel: "delta_m", X: delta,
					Recall: acc.Recall(), Precision: acc.Precision(),
					FailRate: stats.FailureRate(),
				})
			}
			r.logf("fig10 %s %s done", ds, m.Name())
		}
	}
	return rows, nil
}

// RunTiming reproduces Fig 11: training time and per-trajectory imputation
// time for KAMEL and TrImpute (map matching included for imputation).
func (r *Runner) RunTiming(datasets []string) ([]Row, error) {
	const sparse = 1000
	var rows []Row
	for _, ds := range datasets {
		ts, sc, err := r.kamelFor(ds)
		if err != nil {
			return nil, err
		}
		tr, trTrainSecs := trimputeFor(sc)
		rows = append(rows,
			Row{Experiment: "fig11-train", Dataset: ds, Method: "KAMEL", XLabel: "phase", Seconds: ts.trainSeconds},
			Row{Experiment: "fig11-train", Dataset: ds, Method: "TrImpute", XLabel: "phase", Seconds: trTrainSecs},
		)
		tests := r.testSlice(sc)
		for _, m := range []baseline.Imputer{ts.sys, tr, baseline.NewMapMatch(sc.Proj, sc.Net)} {
			t0 := time.Now()
			for _, truth := range tests {
				if _, _, err := m.Impute(truth.Sparsify(sparse)); err != nil {
					return nil, err
				}
			}
			per := time.Since(t0).Seconds() / float64(len(tests))
			rows = append(rows, Row{
				Experiment: "fig11-impute", Dataset: ds, Method: m.Name(),
				XLabel: "phase", Seconds: per,
			})
			r.logf("fig11 %s %s: %.3fs/trajectory", ds, m.Name(), per)
		}
	}
	return rows, nil
}

// RunRoadType reproduces Fig 12-I/II: the sparseness and threshold sweeps
// restricted to straight versus curved segments (§8.4), on the jakarta-like
// dataset as in the paper.
func (r *Runner) RunRoadType(dataset string, sweep []float64) ([]Row, error) {
	if len(sweep) == 0 {
		sweep = []float64{500, 1000, 2000, 3000}
	}
	ts, sc, err := r.kamelFor(dataset)
	if err != nil {
		return nil, err
	}
	tr, _ := trimputeFor(sc)
	methods := []baseline.Imputer{
		ts.sys,
		tr,
		&baseline.Linear{Proj: sc.Proj, StepMeters: r.Opts.MaxGapM},
	}
	tests := r.testSlice(sc)
	delta := r.delta(dataset)
	var rows []Row
	for _, sparse := range sweep {
		// Build per-gap sub-cases with their ground-truth slices, bucketed
		// by the §8.4 classifier.
		type gapCase struct {
			truth  geo.Trajectory // dense ground truth of the gap
			sparse geo.Trajectory // the two gap endpoints
		}
		buckets := map[metrics.SegmentKind][]gapCase{}
		for _, truth := range tests {
			idx := truth.SparsifyIndices(sparse)
			for j := 0; j+1 < len(idx); j++ {
				a, b := idx[j], idx[j+1]
				kind, err := metrics.ClassifySegment(sc.Net,
					sc.Proj.ToXY(truth.Points[a]), sc.Proj.ToXY(truth.Points[b]), 5)
				if err != nil {
					continue
				}
				buckets[kind] = append(buckets[kind], gapCase{
					truth:  geo.Trajectory{ID: truth.ID, Points: truth.Points[a : b+1]},
					sparse: geo.Trajectory{ID: truth.ID, Points: []geo.Point{truth.Points[a], truth.Points[b]}},
				})
			}
		}
		for kind, cases := range buckets {
			kindName := "straight"
			if kind == metrics.Curved {
				kindName = "curved"
			}
			for _, m := range methods {
				var acc metrics.Accumulator
				var stats baseline.Stats
				for _, gc := range cases {
					dense, st, err := m.Impute(gc.sparse)
					if err != nil {
						return nil, err
					}
					stats.Add(st)
					acc.Add(metrics.Evaluate(sc.Proj, gc.truth, dense, r.Opts.MaxGapM, delta))
				}
				rows = append(rows, Row{
					Experiment: "fig12-road-" + kindName, Dataset: dataset, Method: m.Name(),
					XLabel: "sparseness_m", X: sparse,
					Recall: acc.Recall(), Precision: acc.Precision(), FailRate: stats.FailureRate(),
				})
			}
			r.logf("fig12-road %s sparse=%.0f %s: %d gaps", dataset, sparse, kindName, len(cases))
		}
	}
	return rows, nil
}

// RunGridType reproduces Fig 12-III: hexagonal (H3-style) versus
// area-matched square (S2-style) tokenization, all else equal.
func (r *Runner) RunGridType(dataset string, sweep []float64) ([]Row, error) {
	if len(sweep) == 0 {
		sweep = []float64{500, 1000, 2000, 3000}
	}
	sc, err := r.scenario(dataset)
	if err != nil {
		return nil, err
	}
	delta := r.delta(dataset)
	tests := r.testSlice(sc)
	var rows []Row
	for _, kind := range []string{"hex", "square"} {
		dir, err := r.workdir(dataset + "-grid-" + kind)
		if err != nil {
			return nil, err
		}
		cfg := r.kamelConfig(dir, sc)
		cfg.GridKind = kind
		cfg.DisablePartitioning = true // isolate the grid effect
		sys, err := core.NewWithProjection(cfg, sc.Proj)
		if err != nil {
			return nil, err
		}
		r.logf("fig12-grid training %s grid", kind)
		if err := sys.Train(sc.Train); err != nil {
			return nil, err
		}
		name := "Hexagons(H3)"
		if kind == "square" {
			name = "Squares(S2)"
		}
		for _, sparse := range sweep {
			acc, stats, _, err := r.measure(sc, sys, tests, sparse, delta)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Row{
				Experiment: "fig12-grid", Dataset: dataset, Method: name,
				XLabel: "sparseness_m", X: sparse,
				Recall: acc.Recall(), Precision: acc.Precision(), FailRate: stats.FailureRate(),
			})
		}
		sys.Close()
	}
	return rows, nil
}

// RunTrainSize reproduces Fig 12-IV: KAMEL trained on 25/50/75/100% of the
// training trajectories.
func (r *Runner) RunTrainSize(dataset string, sweep []float64) ([]Row, error) {
	if len(sweep) == 0 {
		sweep = []float64{500, 1000, 2000, 3000}
	}
	sc, err := r.scenario(dataset)
	if err != nil {
		return nil, err
	}
	delta := r.delta(dataset)
	tests := r.testSlice(sc)
	var rows []Row
	for _, frac := range []float64{1.0, 0.75, 0.5, 0.25} {
		n := int(frac * float64(len(sc.Train)))
		if n < 1 {
			n = 1
		}
		dir, err := r.workdir(fmt.Sprintf("%s-size-%d", dataset, int(frac*100)))
		if err != nil {
			return nil, err
		}
		cfg := r.kamelConfig(dir, sc)
		cfg.DisablePartitioning = true
		sys, err := core.NewWithProjection(cfg, sc.Proj)
		if err != nil {
			return nil, err
		}
		r.logf("fig12-size training on %d%% (%d trajectories)", int(frac*100), n)
		if err := sys.Train(sc.Train[:n]); err != nil {
			return nil, err
		}
		name := fmt.Sprintf("%d%%", int(frac*100))
		for _, sparse := range sweep {
			acc, stats, _, err := r.measure(sc, sys, tests, sparse, delta)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Row{
				Experiment: "fig12-size", Dataset: dataset, Method: name,
				XLabel: "sparseness_m", X: sparse,
				Recall: acc.Recall(), Precision: acc.Precision(), FailRate: stats.FailureRate(),
			})
		}
		sys.Close()
	}
	return rows, nil
}

// RunDensity reproduces Fig 12-V: KAMEL trained on the same trajectories
// sampled at 1/15/30/60 second periods.
func (r *Runner) RunDensity(dataset string, sweep []float64) ([]Row, error) {
	if len(sweep) == 0 {
		sweep = []float64{500, 1000, 2000, 3000}
	}
	sc, err := r.scenario(dataset)
	if err != nil {
		return nil, err
	}
	delta := r.delta(dataset)
	tests := r.testSlice(sc)
	var rows []Row
	for _, period := range []float64{1, 15, 30, 60} {
		training := make([]geo.Trajectory, len(sc.Train))
		for i, tr := range sc.Train {
			training[i] = tr.SampleEvery(period)
		}
		dir, err := r.workdir(fmt.Sprintf("%s-density-%d", dataset, int(period)))
		if err != nil {
			return nil, err
		}
		cfg := r.kamelConfig(dir, sc)
		cfg.DisablePartitioning = true
		sys, err := core.NewWithProjection(cfg, sc.Proj)
		if err != nil {
			return nil, err
		}
		r.logf("fig12-density training at %.0fs sampling", period)
		if err := sys.Train(training); err != nil {
			return nil, err
		}
		name := fmt.Sprintf("%.0f Sec.", period)
		for _, sparse := range sweep {
			acc, stats, _, err := r.measure(sc, sys, tests, sparse, delta)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Row{
				Experiment: "fig12-density", Dataset: dataset, Method: name,
				XLabel: "sparseness_m", X: sparse,
				Recall: acc.Recall(), Precision: acc.Precision(), FailRate: stats.FailureRate(),
			})
		}
		sys.Close()
	}
	return rows, nil
}

// RunAblation reproduces Fig 12-VI: the full system versus No Partitioning,
// No Constraints, and No Multipoint (§8.7).  The constraint and multipoint
// switches reuse the trained full system; No Partitioning retrains with one
// global model.
func (r *Runner) RunAblation(dataset string, sweep []float64) ([]Row, error) {
	if len(sweep) == 0 {
		sweep = []float64{500, 1000, 2000, 3000}
	}
	ts, sc, err := r.kamelFor(dataset)
	if err != nil {
		return nil, err
	}
	delta := r.delta(dataset)
	tests := r.testSlice(sc)

	dir, err := r.workdir(dataset + "-nopart")
	if err != nil {
		return nil, err
	}
	noPartCfg := r.kamelConfig(dir, sc)
	noPartCfg.DisablePartitioning = true
	noPart, err := core.NewWithProjection(noPartCfg, sc.Proj)
	if err != nil {
		return nil, err
	}
	r.logf("fig12-ablation training No Part. variant")
	if err := noPart.Train(sc.Train); err != nil {
		return nil, err
	}
	defer noPart.Close()

	variants := []struct {
		name string
		imp  baseline.Imputer
	}{
		{"KAMEL", ts.sys},
		{"No Part.", noPart},
		{"No Const.", ts.sys.WithAblation(true, false)},
		{"No Multi.", ts.sys.WithAblation(false, true)},
	}
	var rows []Row
	for _, sparse := range sweep {
		for _, v := range variants {
			acc, stats, _, err := r.measure(sc, v.imp, tests, sparse, delta)
			if err != nil {
				return nil, err
			}
			r.logf("fig12-ablation %s sparse=%.0f: recall=%.3f precision=%.3f fail=%.3f",
				v.name, sparse, acc.Recall(), acc.Precision(), stats.FailureRate())
			rows = append(rows, Row{
				Experiment: "fig12-ablation", Dataset: dataset, Method: v.name,
				XLabel: "sparseness_m", X: sparse,
				Recall: acc.Recall(), Precision: acc.Precision(), FailRate: stats.FailureRate(),
			})
		}
	}
	return rows, nil
}

// RunCellSize reproduces Fig 3(d): imputation accuracy versus hexagon cell
// size via the §3.2 auto-tuner.
func (r *Runner) RunCellSize(dataset string, sizes []float64) ([]Row, error) {
	if len(sizes) == 0 {
		sizes = []float64{25, 50, 75, 125, 200, 300}
	}
	sc, err := r.scenario(dataset)
	if err != nil {
		return nil, err
	}
	dir, err := r.workdir(dataset + "-tune")
	if err != nil {
		return nil, err
	}
	cfg := r.kamelConfig(dir, sc)
	cfg.Train.Steps = r.Opts.TrainSteps / 2 // throwaway trial models
	sys, err := core.NewWithProjection(cfg, sc.Proj)
	if err != nil {
		return nil, err
	}
	defer sys.Close()
	sample := sc.Train
	if len(sample) > 48 {
		sample = sample[:48]
	}
	r.logf("fig3d tuning cell size over %v", sizes)
	best, results, err := sys.TuneCellSize(sample, sizes, 1000, r.delta(dataset))
	if err != nil {
		return nil, err
	}
	var rows []Row
	for _, res := range results {
		rows = append(rows, Row{
			Experiment: "fig3d", Dataset: dataset, Method: "KAMEL",
			XLabel: "cell_edge_m", X: res.CellEdgeM,
			Recall: res.Recall, Precision: res.Precision,
		})
	}
	r.logf("fig3d best cell size: %.0fm", best)
	return rows, nil
}

// ModelInventory reports the per-level model counts of a trained scenario's
// repository (experiment E13, mirroring the paper's §8 model counts).
func (r *Runner) ModelInventory(dataset string) ([]Row, error) {
	ts, _, err := r.kamelFor(dataset)
	if err != nil {
		return nil, err
	}
	repo := ts.sys.Repo()
	if repo == nil {
		return nil, fmt.Errorf("eval: %s has no repository (global mode)", dataset)
	}
	perLevel := map[int]*Row{}
	repo.Entries(func(e *pyramid.Entry) {
		row, ok := perLevel[e.Key.Level]
		if !ok {
			row = &Row{Experiment: "models", Dataset: dataset, XLabel: "level", X: float64(e.Key.Level)}
			perLevel[e.Key.Level] = row
		}
		if e.HasSingle() {
			row.Recall++ // single-cell model count
		}
		if e.HasEast() {
			row.Precision++ // neighbor-cell model count
		}
		if e.HasSouth() {
			row.Precision++
		}
	})
	var rows []Row
	for _, row := range perLevel {
		row.Method = fmt.Sprintf("single=%d neighbor=%d", int(row.Recall), int(row.Precision))
		rows = append(rows, *row)
	}
	return rows, nil
}

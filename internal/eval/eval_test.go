package eval

import (
	"bytes"
	"strings"
	"testing"
)

// tinyRunner returns a runner scaled for CI: tiny workload, tiny training.
func tinyRunner(t *testing.T) *Runner {
	t.Helper()
	opts := DefaultOptions()
	opts.Workdir = t.TempDir()
	opts.Scale = 0.25
	opts.TestN = 2
	opts.TrainSteps = 90
	r := NewRunner(opts)
	t.Cleanup(r.Close)
	return r
}

func TestNewScenario(t *testing.T) {
	sc, err := NewScenario(ScenarioSpec{Name: "porto-like", Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Train) == 0 || len(sc.Test) == 0 {
		t.Fatal("empty scenario split")
	}
	if float64(len(sc.Train)) < 3*float64(len(sc.Test)) {
		t.Errorf("split not ~80/20: %d/%d", len(sc.Train), len(sc.Test))
	}
	if _, err := NewScenario(ScenarioSpec{Name: "mars"}); err == nil {
		t.Error("unknown scenario must error")
	}
}

func TestRunSparsenessShape(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	r := tinyRunner(t)
	rows, err := r.RunSparseness([]string{"porto-like"}, []float64{800, 2000})
	if err != nil {
		t.Fatal(err)
	}
	// 2 sweep values × 4 methods.
	if len(rows) != 8 {
		t.Fatalf("got %d rows, want 8", len(rows))
	}
	byMethod := map[string][]Row{}
	for _, row := range rows {
		byMethod[row.Method] = append(byMethod[row.Method], row)
		if row.Recall < 0 || row.Recall > 1 || row.Precision < 0 || row.Precision > 1 {
			t.Errorf("metric out of range: %+v", row)
		}
	}
	for _, m := range []string{"KAMEL", "TrImpute", "Linear", "MapMatch"} {
		if len(byMethod[m]) != 2 {
			t.Errorf("method %s has %d rows", m, len(byMethod[m]))
		}
	}
	// Linear has 100% failure by definition.
	for _, row := range byMethod["Linear"] {
		if row.FailRate != 1 {
			t.Errorf("linear fail rate %f, want 1", row.FailRate)
		}
	}
}

func TestRunThresholdMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	r := tinyRunner(t)
	rows, err := r.RunThreshold([]string{"porto-like"}, []float64{10, 50, 100})
	if err != nil {
		t.Fatal(err)
	}
	// For every method, recall must be non-decreasing in δ (the same
	// imputed trajectory scored under looser thresholds).
	byMethod := map[string][]Row{}
	for _, row := range rows {
		byMethod[row.Method] = append(byMethod[row.Method], row)
	}
	for m, series := range byMethod {
		for i := 1; i < len(series); i++ {
			if series[i].X > series[i-1].X && series[i].Recall < series[i-1].Recall-1e-9 {
				t.Errorf("%s recall decreased with looser δ: %+v", m, series)
			}
		}
	}
}

func TestRunTiming(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	r := tinyRunner(t)
	rows, err := r.RunTiming([]string{"porto-like"})
	if err != nil {
		t.Fatal(err)
	}
	var kamelTrain, trTrain float64
	for _, row := range rows {
		if row.Experiment == "fig11-train" {
			switch row.Method {
			case "KAMEL":
				kamelTrain = row.Seconds
			case "TrImpute":
				trTrain = row.Seconds
			}
		}
	}
	// The paper's Fig 11(a) shape: KAMEL trains orders of magnitude slower
	// than TrImpute's statistics pass.
	if kamelTrain < 10*trTrain {
		t.Errorf("KAMEL train %.3fs vs TrImpute %.3fs: expected ≫", kamelTrain, trTrain)
	}
}

func TestReporters(t *testing.T) {
	rows := []Row{
		{Experiment: "fig9", Dataset: "porto-like", Method: "KAMEL", XLabel: "sparseness_m", X: 1000, Recall: 0.8, Precision: 0.7, FailRate: 0.01},
		{Experiment: "fig9", Dataset: "porto-like", Method: "Linear", XLabel: "sparseness_m", X: 1000, Recall: 0.4, Precision: 0.5, FailRate: 1},
	}
	var tbl bytes.Buffer
	if err := WriteTable(&tbl, rows); err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	if !strings.Contains(out, "fig9 / porto-like") || !strings.Contains(out, "KAMEL") {
		t.Errorf("table missing content:\n%s", out)
	}
	var csvBuf bytes.Buffer
	if err := WriteCSV(&csvBuf, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 3 {
		t.Errorf("CSV has %d lines, want header+2", len(lines))
	}
	if !strings.HasPrefix(lines[0], "experiment,dataset,method") {
		t.Errorf("CSV header wrong: %s", lines[0])
	}
}

func TestRunnerDefaults(t *testing.T) {
	r := NewRunner(Options{})
	if r.Opts.TestN != 8 || r.Opts.TrainSteps != 700 || r.Opts.MaxGapM != 100 {
		t.Errorf("defaults not applied: %+v", r.Opts)
	}
	if r.delta("porto-like") != 50 || r.delta("jakarta-like") != 25 {
		t.Error("paper δ defaults missing")
	}
	if r.delta("unknown") != 50 {
		t.Error("unknown dataset must default to 50")
	}
}

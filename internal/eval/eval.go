// Package eval is the experiment harness that regenerates every table and
// figure of the paper's evaluation (§8) on the synthetic city substrate.
// Each Run* method corresponds to one figure (see DESIGN.md's experiment
// index); all of them emit Rows that the reporters render as aligned text
// tables or CSV.
package eval

import (
	"fmt"
	"os"
	"time"

	"kamel/internal/baseline"
	"kamel/internal/core"
	"kamel/internal/geo"
	"kamel/internal/metrics"
	"kamel/internal/roadnet"
	"kamel/internal/trajgen"
)

// Row is one measured point: an experiment, a dataset, a method, an x-axis
// value, and the paper's four metrics.
type Row struct {
	Experiment string
	Dataset    string
	Method     string
	XLabel     string
	X          float64
	Recall     float64
	Precision  float64
	FailRate   float64
	Seconds    float64 // wall time of the measured phase, when relevant
}

// Scenario is a materialized dataset: the ground-truth network, projection,
// and the 80/20 train/test split of simulated trajectories (§8 protocol).
type Scenario struct {
	Name  string
	Net   *roadnet.Network
	Proj  *geo.Projection
	Train []geo.Trajectory
	Test  []geo.Trajectory
}

// ScenarioSpec sizes a scenario.  Scale multiplies the trip count.
type ScenarioSpec struct {
	Name  string
	Scale float64
}

// NewScenario materializes one of the two evaluation datasets.  Name must be
// "porto-like" or "jakarta-like" (DESIGN.md substitution table).
func NewScenario(spec ScenarioSpec) (*Scenario, error) {
	if spec.Scale <= 0 {
		spec.Scale = 1
	}
	var p trajgen.Profile
	switch spec.Name {
	case "porto-like":
		p = trajgen.PortoLike(0.5 * spec.Scale)
		p.City.Width, p.City.Height = 2200, 2200
		p.Traffic.Trips = int(110 * spec.Scale)
	case "jakarta-like":
		p = trajgen.JakartaLike(0.7 * spec.Scale)
		p.City.Width, p.City.Height = 3000, 3000
		p.Traffic.Trips = int(36 * spec.Scale)
		p.Traffic.MinTripMeters = 2500
	default:
		return nil, fmt.Errorf("eval: unknown scenario %q", spec.Name)
	}
	net, proj, trajs, err := p.Materialize()
	if err != nil {
		return nil, err
	}
	train, test := trajgen.SplitTrainTest(trajs, 0.8, 7)
	return &Scenario{Name: spec.Name, Net: net, Proj: proj, Train: train, Test: test}, nil
}

// Options tunes harness cost.  The defaults reproduce the figures in
// ~15-25 minutes on one CPU core; benches shrink everything.
type Options struct {
	Workdir    string             // scratch space; "" = os.MkdirTemp
	Scale      float64            // workload scale factor (1 = harness default)
	TestN      int                // test trajectories evaluated per point (default 8)
	TrainSteps int                // KAMEL training steps (default 700)
	MaxGapM    float64            // paper default 100
	DeltaM     map[string]float64 // per-dataset accuracy threshold δ
}

// DefaultOptions returns the harness defaults, mirroring the paper's: δ=50m
// porto-like, δ=25m jakarta-like (§8), max_gap 100m.
func DefaultOptions() Options {
	return Options{
		Scale:      1,
		TestN:      8,
		TrainSteps: 700,
		MaxGapM:    100,
		DeltaM:     map[string]float64{"porto-like": 50, "jakarta-like": 25},
	}
}

// Runner executes experiments, caching trained systems per scenario.
type Runner struct {
	Opts      Options
	scenarios map[string]*Scenario
	systems   map[string]*trainedSystem
	Log       func(format string, args ...interface{}) // progress sink; nil = silent
}

type trainedSystem struct {
	sys          *core.System
	trainSeconds float64
}

// NewRunner returns a harness runner.
func NewRunner(opts Options) *Runner {
	if opts.TestN <= 0 {
		opts.TestN = 8
	}
	if opts.TrainSteps <= 0 {
		opts.TrainSteps = 700
	}
	if opts.MaxGapM <= 0 {
		opts.MaxGapM = 100
	}
	if opts.DeltaM == nil {
		opts.DeltaM = DefaultOptions().DeltaM
	}
	return &Runner{
		Opts:      opts,
		scenarios: make(map[string]*Scenario),
		systems:   make(map[string]*trainedSystem),
	}
}

func (r *Runner) logf(format string, args ...interface{}) {
	if r.Log != nil {
		r.Log(format, args...)
	}
}

// scenario materializes (once) a named dataset.
func (r *Runner) scenario(name string) (*Scenario, error) {
	if s, ok := r.scenarios[name]; ok {
		return s, nil
	}
	r.logf("materializing %s scenario", name)
	s, err := NewScenario(ScenarioSpec{Name: name, Scale: r.Opts.Scale})
	if err != nil {
		return nil, err
	}
	r.scenarios[name] = s
	return s, nil
}

// kamelConfig returns the harness KAMEL configuration for a scenario.  The
// pyramid threshold k scales with the corpus so that the root model always
// builds while per-quadrant models still require concentrated data, keeping
// the paper's threshold mechanism meaningful at any workload scale.
func (r *Runner) kamelConfig(workdir string, sc *Scenario) core.Config {
	cfg := core.DefaultConfig(workdir)
	cfg.Train.Steps = r.Opts.TrainSteps
	cfg.MaxGapM = r.Opts.MaxGapM
	// A shallow pyramid keeps maintenance affordable at repro scale while
	// still exercising the repository: a root model plus quadrant and
	// neighbor-cell models where data suffices.
	cfg.PyramidH = 1
	cfg.PyramidL = 2
	tokens := 0
	for _, tr := range sc.Train {
		tokens += len(tr.Points)
	}
	cfg.ThresholdK = tokens / 8
	if cfg.ThresholdK < 100 {
		cfg.ThresholdK = 100
	}
	// Length normalization below the paper's α=1: at reproduction scale the
	// model is noisier, and full normalization over-rewards long wandering
	// paths over direct ones.
	cfg.Alpha = 0.6
	return cfg
}

// workdir allocates scratch space.
func (r *Runner) workdir(tag string) (string, error) {
	base := r.Opts.Workdir
	if base == "" {
		return os.MkdirTemp("", "kamel-eval-"+tag+"-*")
	}
	dir := base + "/" + tag
	return dir, os.MkdirAll(dir, 0o755)
}

// kamelFor returns (training once) the full KAMEL system for a scenario.
func (r *Runner) kamelFor(name string) (*trainedSystem, *Scenario, error) {
	sc, err := r.scenario(name)
	if err != nil {
		return nil, nil, err
	}
	if ts, ok := r.systems[name]; ok {
		return ts, sc, nil
	}
	dir, err := r.workdir(name)
	if err != nil {
		return nil, nil, err
	}
	sys, err := core.NewWithProjection(r.kamelConfig(dir, sc), sc.Proj)
	if err != nil {
		return nil, nil, err
	}
	r.logf("training KAMEL on %s (%d trajectories)", name, len(sc.Train))
	t0 := time.Now()
	if err := sys.Train(sc.Train); err != nil {
		return nil, nil, err
	}
	ts := &trainedSystem{sys: sys, trainSeconds: time.Since(t0).Seconds()}
	r.logf("trained %s in %.1fs: %+v", name, ts.trainSeconds, sys.SystemStats())
	r.systems[name] = ts
	return ts, sc, nil
}

// trimputeFor trains a TrImpute baseline for a scenario.
func trimputeFor(sc *Scenario) (*baseline.TrImpute, float64) {
	tr := baseline.NewTrImpute(sc.Proj)
	t0 := time.Now()
	tr.Train(sc.Train)
	return tr, time.Since(t0).Seconds()
}

// testSlice returns the first n test trajectories (all when n is larger).
func (r *Runner) testSlice(sc *Scenario) []geo.Trajectory {
	n := r.Opts.TestN
	if n > len(sc.Test) {
		n = len(sc.Test)
	}
	return sc.Test[:n]
}

// measure imputes every test trajectory at the given sparseness and returns
// aggregate recall/precision/failure plus total imputation seconds.
func (r *Runner) measure(sc *Scenario, imp baseline.Imputer, tests []geo.Trajectory, sparseM, delta float64) (metrics.Accumulator, baseline.Stats, float64, error) {
	var acc metrics.Accumulator
	var stats baseline.Stats
	t0 := time.Now()
	for _, truth := range tests {
		sparse := truth.Sparsify(sparseM)
		dense, st, err := imp.Impute(sparse)
		if err != nil {
			return acc, stats, 0, fmt.Errorf("eval: %s on %s: %w", imp.Name(), truth.ID, err)
		}
		stats.Add(st)
		acc.Add(metrics.Evaluate(sc.Proj, truth, dense, r.Opts.MaxGapM, delta))
	}
	return acc, stats, time.Since(t0).Seconds(), nil
}

// delta returns the scenario's accuracy threshold δ.
func (r *Runner) delta(name string) float64 {
	if d, ok := r.Opts.DeltaM[name]; ok {
		return d
	}
	return 50
}

package eval

import (
	"sort"
	"time"

	"kamel/internal/core"
	"kamel/internal/geo"
	"kamel/internal/metrics"
	"kamel/internal/tokenizer"
	"kamel/internal/vocab"
)

// TokenizerABCell is one tokenizer's side of the A/B report: the token-space
// shape (vocabulary size and training-data factor over the training corpus —
// the very statistic Tokenization exists to raise, §1 challenge 2), the
// resulting model count, and serving accuracy/latency.
type TokenizerABCell struct {
	Tokenizer          string  `json:"tokenizer"`
	SpecHash           string  `json:"spec_hash"`
	VocabSize          int     `json:"vocab_size"`
	TrainingDataFactor float64 `json:"training_data_factor"`
	SplitCells         int     `json:"split_cells"`
	MergeCells         int     `json:"merge_cells"`
	SingleModels       int     `json:"single_models"`
	NeighborModels     int     `json:"neighbor_models"`
	Recall             float64 `json:"recall"`
	Precision          float64 `json:"precision"`
	FailRate           float64 `json:"fail_rate"`
	ImputeP50MS        float64 `json:"impute_p50_ms"`
}

// TokenizerABReport is the structured fixed-vs-adaptive comparison for one
// dataset, consumed by the bench pipeline (BENCH_impute.json) alongside the
// tabular Rows.
type TokenizerABReport struct {
	Dataset     string          `json:"dataset"`
	SparsenessM float64         `json:"sparseness_m"`
	Fixed       TokenizerABCell `json:"fixed"`
	Adaptive    TokenizerABCell `json:"adaptive"`
}

// corpusVocabStats tokenizes the training corpus with one tokenizer and
// returns the distinct-token count and training-data factor, using the same
// consecutive-duplicate collapse the training pipeline applies.
func corpusVocabStats(tk tokenizer.Tokenizer, proj *geo.Projection, trajs []geo.Trajectory) (int, float64) {
	v := vocab.New()
	for _, tr := range trajs {
		var last tokenizer.Token
		first := true
		for _, p := range tr.Points {
			t := tk.Tokenize(proj.ToXY(p))
			if first || t != last {
				v.Add(t)
				last, first = t, false
			}
		}
	}
	return v.Size() - vocab.NumSpecial, v.TrainingDataFactor()
}

// RunTokenizerAB trains KAMEL twice on one dataset — fixed-grid versus
// density-adaptive tokenization, all else equal — and reports accuracy,
// token-space shape, model count, and median per-trajectory imputation
// latency for both.  The returned Rows carry the accuracy sweep for the
// text reporters; the report carries the full structured comparison at the
// first sweep point.
func (r *Runner) RunTokenizerAB(dataset string, sweep []float64) ([]Row, *TokenizerABReport, error) {
	if len(sweep) == 0 {
		sweep = []float64{1000, 2000}
	}
	sc, err := r.scenario(dataset)
	if err != nil {
		return nil, nil, err
	}
	delta := r.delta(dataset)
	tests := r.testSlice(sc)
	report := &TokenizerABReport{Dataset: dataset, SparsenessM: sweep[0]}
	var rows []Row
	for _, kind := range []string{core.TokenizerFixed, core.TokenizerAdaptive} {
		dir, err := r.workdir(dataset + "-tok-" + kind)
		if err != nil {
			return nil, nil, err
		}
		cfg := r.kamelConfig(dir, sc)
		cfg.Tokenizer = kind
		sys, err := core.NewWithProjection(cfg, sc.Proj)
		if err != nil {
			return nil, nil, err
		}
		r.logf("tokenizer-ab training %s tokenizer on %s", kind, dataset)
		if err := sys.Train(sc.Train); err != nil {
			return nil, nil, err
		}
		st := sys.SystemStats()
		cell := TokenizerABCell{
			Tokenizer:      kind,
			SpecHash:       st.TokenizerSpecHash,
			SplitCells:     st.SplitCells,
			MergeCells:     st.MergeCells,
			SingleModels:   st.SingleModels,
			NeighborModels: st.NeighborModels,
		}
		cell.VocabSize, cell.TrainingDataFactor = corpusVocabStats(sys.Tokenizer(), sc.Proj, sc.Train)
		for si, sparse := range sweep {
			var acc metrics.Accumulator
			var failSeg, totSeg int
			var durs []float64
			for _, truth := range tests {
				sparseTr := truth.Sparsify(sparse)
				t0 := time.Now()
				dense, ist, err := sys.Impute(sparseTr)
				if err != nil {
					sys.Close()
					return nil, nil, err
				}
				durs = append(durs, time.Since(t0).Seconds())
				failSeg += ist.Failures
				totSeg += ist.Segments
				acc.Add(metrics.Evaluate(sc.Proj, truth, dense, r.Opts.MaxGapM, delta))
			}
			failRate := 0.0
			if totSeg > 0 {
				failRate = float64(failSeg) / float64(totSeg)
			}
			rows = append(rows, Row{
				Experiment: "tokenizer-ab", Dataset: dataset, Method: kind,
				XLabel: "sparseness_m", X: sparse,
				Recall: acc.Recall(), Precision: acc.Precision(), FailRate: failRate,
			})
			if si == 0 {
				cell.Recall, cell.Precision, cell.FailRate = acc.Recall(), acc.Precision(), failRate
				sort.Float64s(durs)
				if len(durs) > 0 {
					cell.ImputeP50MS = durs[len(durs)/2] * 1000
				}
			}
			r.logf("tokenizer-ab %s %s sparse=%.0f recall=%.3f vocab=%d factor=%.1f",
				dataset, kind, sparse, acc.Recall(), cell.VocabSize, cell.TrainingDataFactor)
		}
		switch kind {
		case core.TokenizerFixed:
			report.Fixed = cell
		default:
			report.Adaptive = cell
		}
		sys.Close()
	}
	return rows, report, nil
}

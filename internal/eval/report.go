package eval

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"text/tabwriter"
)

// Close releases every cached trained system.
func (r *Runner) Close() {
	for _, ts := range r.systems {
		ts.sys.Close()
	}
	r.systems = make(map[string]*trainedSystem)
}

// WriteTable renders rows as an aligned text table, grouped by experiment
// and dataset, in the spirit of the paper's figure series.
func WriteTable(w io.Writer, rows []Row) error {
	sorted := append([]Row(nil), rows...)
	sort.SliceStable(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.Experiment != b.Experiment {
			return a.Experiment < b.Experiment
		}
		if a.Dataset != b.Dataset {
			return a.Dataset < b.Dataset
		}
		if a.X != b.X {
			return a.X < b.X
		}
		return a.Method < b.Method
	})
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	var lastHeader string
	for _, row := range sorted {
		header := row.Experiment + " / " + row.Dataset
		if header != lastHeader {
			if lastHeader != "" {
				fmt.Fprintln(tw)
			}
			fmt.Fprintf(tw, "== %s ==\n", header)
			fmt.Fprintf(tw, "%s\tmethod\trecall\tprecision\tfail_rate\tseconds\n", row.XLabel)
			lastHeader = header
		}
		fmt.Fprintf(tw, "%g\t%s\t%.3f\t%.3f\t%.3f\t%.2f\n",
			row.X, row.Method, row.Recall, row.Precision, row.FailRate, row.Seconds)
	}
	return tw.Flush()
}

// WriteCSV renders rows as CSV with a header.
func WriteCSV(w io.Writer, rows []Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"experiment", "dataset", "method", "x_label", "x", "recall", "precision", "fail_rate", "seconds"}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
	for _, r := range rows {
		if err := cw.Write([]string{r.Experiment, r.Dataset, r.Method, r.XLabel, f(r.X), f(r.Recall), f(r.Precision), f(r.FailRate), f(r.Seconds)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

package grid

import (
	"math"
	"testing"
	"testing/quick"

	"kamel/internal/geo"
)

func TestSquareCellAtCentroidRoundTrip(t *testing.T) {
	s := NewSquare(120)
	f := func(x, y float64) bool {
		p := geo.XY{X: math.Mod(x, 5e4), Y: math.Mod(y, 5e4)}
		c := s.CellAt(p)
		ctr := s.Centroid(c)
		// The point must be within the half-diagonal of its centroid.
		if ctr.Dist(p) > 120*math.Sqrt2/2+1e-6 {
			return false
		}
		return s.CellAt(ctr) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSquareNeighbors(t *testing.T) {
	s := NewSquare(120)
	c := s.CellAt(geo.XY{X: 1000, Y: 2000})
	nb := s.Neighbors(c)
	if len(nb) != 4 {
		t.Fatalf("square cell has %d neighbors, want 4", len(nb))
	}
	for _, n := range nb {
		if got := CentroidDistance(s, c, n); math.Abs(got-120) > 1e-9 {
			t.Errorf("edge-neighbor distance %f, want 120", got)
		}
	}
}

func TestSquareDistanceChebyshev(t *testing.T) {
	s := NewSquare(100)
	a := s.CellAt(geo.XY{X: 50, Y: 50})   // (0,0)
	b := s.CellAt(geo.XY{X: 350, Y: 150}) // (3,1)
	if got := s.Distance(a, b); got != 3 {
		t.Errorf("Distance = %d, want 3", got)
	}
	if got := s.Distance(a, a); got != 0 {
		t.Errorf("self distance = %d, want 0", got)
	}
}

func TestSquareLine(t *testing.T) {
	s := NewSquare(100)
	a := s.CellAt(geo.XY{X: 50, Y: 50})
	b := s.CellAt(geo.XY{X: 1050, Y: 550})
	line := s.Line(a, b)
	if line[0] != a || line[len(line)-1] != b {
		t.Fatal("line must start at a and end at b")
	}
	for i := 1; i < len(line); i++ {
		if s.Distance(line[i-1], line[i]) > 1 {
			t.Errorf("line step %d jumps Chebyshev distance %d", i, s.Distance(line[i-1], line[i]))
		}
	}
}

func TestSquareDisk(t *testing.T) {
	s := NewSquare(100)
	c := s.CellAt(geo.XY{X: 0, Y: 0})
	for k := 0; k <= 3; k++ {
		disk := s.Disk(c, k)
		want := (2*k + 1) * (2*k + 1)
		if len(disk) != want {
			t.Errorf("Disk(k=%d) has %d cells, want %d", k, len(disk), want)
		}
	}
}

func TestSquareEdgeForHexArea(t *testing.T) {
	// The paper's area matching: a hexagon with edge 75m has nearly the same
	// area as a square with edge ~120m (§8.5).
	e := SquareEdgeForHexArea(75)
	if e < 115 || e > 125 {
		t.Errorf("SquareEdgeForHexArea(75) = %f, want ~120", e)
	}
	h := NewHex(75)
	s := NewSquare(e)
	if math.Abs(h.CellAreaM2()-s.CellAreaM2()) > 1e-6 {
		t.Errorf("areas differ: hex %f vs square %f", h.CellAreaM2(), s.CellAreaM2())
	}
}

func TestNewSquarePanicsOnBadEdge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSquare(-1) must panic")
		}
	}()
	NewSquare(-1)
}

func TestNegativeCoordinates(t *testing.T) {
	// Cells must be well-defined for negative planar coordinates (west/south
	// of the projection origin).
	s := NewSquare(100)
	h := NewHex(75)
	p := geo.XY{X: -12345, Y: -678}
	if s.CellAt(p) == s.CellAt(geo.XY{X: 12345, Y: 678}) {
		t.Error("mirrored points must not share a square cell")
	}
	if h.CellAt(p) == h.CellAt(geo.XY{X: 12345, Y: 678}) {
		t.Error("mirrored points must not share a hex cell")
	}
	if got := s.Centroid(s.CellAt(p)).Dist(p); got > 100*math.Sqrt2/2+1e-9 {
		t.Errorf("negative-coordinate centroid too far: %f", got)
	}
}

package grid

import (
	"math/rand"
	"testing"
)

// TestPackUnpackRoundTrip is a property test over the Cell encoding: any
// pair of signed 32-bit coordinates — negative axial coordinates included —
// round-trips exactly, and the encoding is injective over the sweep.
func TestPackUnpackRoundTrip(t *testing.T) {
	// Boundary cases first: extremes, sign changes, zero.
	edges := []int32{-2147483648, -2147483647, -65536, -2, -1, 0, 1, 2, 65535, 2147483646, 2147483647}
	for _, a := range edges {
		for _, b := range edges {
			q, r := Unpack(Pack(a, b))
			if q != a || r != b {
				t.Fatalf("Pack(%d,%d) round-tripped to (%d,%d)", a, b, q, r)
			}
		}
	}
	rng := rand.New(rand.NewSource(1234))
	seen := make(map[Cell][2]int32, 200000)
	for i := 0; i < 200000; i++ {
		a := int32(rng.Uint32())
		b := int32(rng.Uint32())
		c := Pack(a, b)
		q, r := Unpack(c)
		if q != a || r != b {
			t.Fatalf("Pack(%d,%d) round-tripped to (%d,%d)", a, b, q, r)
		}
		if prev, dup := seen[c]; dup && (prev[0] != a || prev[1] != b) {
			t.Fatalf("Pack collision: (%d,%d) and (%d,%d) both encode %#x", prev[0], prev[1], a, b, uint64(c))
		}
		seen[c] = [2]int32{a, b}
	}
}

// TestPackNegativeAxialGridConsistency proves the grids themselves address
// negative-coordinate space consistently: a centroid computed from a packed
// negative-axial cell maps back to the same cell.
func TestPackNegativeAxialGridConsistency(t *testing.T) {
	h := NewHex(75)
	s := NewSquare(100)
	for q := int32(-40); q <= 5; q += 3 {
		for r := int32(-40); r <= 5; r += 3 {
			c := Pack(q, r)
			if got := h.CellAt(h.Centroid(c)); got != c {
				t.Fatalf("hex: centroid of (%d,%d) mapped to %v", q, r, got)
			}
			if got := s.CellAt(s.Centroid(c)); got != c {
				t.Fatalf("square: centroid of (%d,%d) mapped to %v", q, r, got)
			}
		}
	}
}

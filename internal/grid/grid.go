// Package grid implements the space-tokenization substrates of KAMEL's
// Tokenization module (paper §3): a flat hexagonal grid in the spirit of
// Uber's H3 index, and a square grid in the spirit of Google's S2 cells,
// which the paper compares against in its grid-type experiment (§8.5,
// Fig 12-III).
//
// Both grids tessellate the local planar frame (meters) produced by
// geo.Projection.  A grid maps points to fixed-size cells; the cell identifier
// is the "token" that KAMEL's BERT model is trained on.  Unlike H3, no
// hierarchy is provided — the paper explicitly notes KAMEL does not need one
// (§3.1): cells exist only to tokenize points and detokenize cells.
package grid

import "kamel/internal/geo"

// Cell is a packed grid-cell identifier.  For hexagonal grids it packs axial
// coordinates (q, r); for square grids it packs integer column and row.  The
// packing is stable across runs, making Cell suitable as a persisted token.
type Cell int64

// Pack combines two 32-bit signed coordinates into one Cell.  It is exported
// so multi-resolution tokenizers (internal/tokenizer) can address cells of
// their underlying grids directly; plain grid consumers never need it.
func Pack(a, b int32) Cell {
	return Cell(int64(a)<<32 | int64(uint32(b)))
}

// Unpack splits a Cell into its two 32-bit signed coordinates.
func Unpack(c Cell) (int32, int32) {
	return int32(int64(c) >> 32), int32(uint32(int64(c) & 0xffffffff))
}

// pack and unpack are the internal spellings, kept so the grid
// implementations read unchanged.
func pack(a, b int32) Cell         { return Pack(a, b) }
func unpack(c Cell) (int32, int32) { return Unpack(c) }

// Grid is the tokenization substrate interface.  Implementations must be
// safe for concurrent use (they are stateless after construction).
type Grid interface {
	// Kind identifies the tessellation ("hex" or "square").
	Kind() string
	// EdgeMeters returns the cell edge length in meters.
	EdgeMeters() float64
	// StepMeters returns the maximum centroid distance between two cells at
	// grid distance 1.  Consumers clamp meter-valued gap thresholds to at
	// least this, since no two distinct cells can be closer (the paper's
	// Figure 6 measures max_gap in token steps for the same reason).
	StepMeters() float64
	// CellAreaM2 returns the area of one cell in square meters.
	CellAreaM2() float64
	// CellAt returns the cell containing the planar point p.
	CellAt(p geo.XY) Cell
	// Centroid returns the center of the cell in the planar frame.
	Centroid(c Cell) geo.XY
	// Neighbors returns the cells sharing an edge with c, in a fixed order.
	Neighbors(c Cell) []Cell
	// Distance returns the minimum number of neighbor steps between a and b.
	Distance(a, b Cell) int
	// Line returns the cells crossed by the straight segment from a to b,
	// inclusive of both endpoints, in order.
	Line(a, b Cell) []Cell
	// Disk returns all cells within grid distance k of c (including c).
	Disk(c Cell, k int) []Cell
}

// CentroidDistance returns the planar distance between two cell centers.
func CentroidDistance(g Grid, a, b Cell) float64 {
	return g.Centroid(a).Dist(g.Centroid(b))
}

package grid

import (
	"math"
	"testing"
	"testing/quick"

	"kamel/internal/geo"
)

// TestLineContinuityProperty: for both grids, Line between any two cells
// starts at a, ends at b, and every step moves grid distance exactly 1.
func TestLineContinuityProperty(t *testing.T) {
	grids := []Grid{NewHex(60), NewSquare(80)}
	for _, g := range grids {
		g := g
		f := func(x1, y1, x2, y2 float64) bool {
			a := g.CellAt(geo.XY{X: math.Mod(x1, 8000), Y: math.Mod(y1, 8000)})
			b := g.CellAt(geo.XY{X: math.Mod(x2, 8000), Y: math.Mod(y2, 8000)})
			line := g.Line(a, b)
			if line[0] != a || line[len(line)-1] != b {
				return false
			}
			for i := 1; i < len(line); i++ {
				if g.Distance(line[i-1], line[i]) != 1 {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("%s: %v", g.Kind(), err)
		}
	}
}

// TestDiskContainsLine: any cell on the line between a and b lies within
// Disk(a, Distance(a,b)).
func TestDiskContainsLine(t *testing.T) {
	g := NewHex(75)
	a := g.CellAt(geo.XY{X: 0, Y: 0})
	b := g.CellAt(geo.XY{X: 700, Y: 400})
	disk := map[Cell]bool{}
	for _, c := range g.Disk(a, g.Distance(a, b)) {
		disk[c] = true
	}
	for _, c := range g.Line(a, b) {
		if !disk[c] {
			t.Errorf("line cell %v outside disk", c)
		}
	}
}

// TestStepMetersIsNeighborMax: StepMeters equals the max centroid distance
// over distance-1 cells.
func TestStepMetersIsNeighborMax(t *testing.T) {
	hex := NewHex(75)
	c := hex.CellAt(geo.XY{X: 123, Y: 456})
	var maxD float64
	for _, n := range hex.Neighbors(c) {
		if d := CentroidDistance(hex, c, n); d > maxD {
			maxD = d
		}
	}
	if math.Abs(maxD-hex.StepMeters()) > 1e-6 {
		t.Errorf("hex StepMeters %f vs neighbor max %f", hex.StepMeters(), maxD)
	}

	sq := NewSquare(100)
	c = sq.CellAt(geo.XY{X: 123, Y: 456})
	maxD = 0
	// Chebyshev-distance-1 cells form the 8-neighborhood.
	for _, n := range sq.Disk(c, 1) {
		if n == c {
			continue
		}
		if d := CentroidDistance(sq, c, n); d > maxD {
			maxD = d
		}
	}
	if math.Abs(maxD-sq.StepMeters()) > 1e-6 {
		t.Errorf("square StepMeters %f vs neighbor max %f", sq.StepMeters(), maxD)
	}
}

// TestHexTessellation: no planar point maps to two cells, and nearby points
// map to nearby cells.
func TestHexTessellation(t *testing.T) {
	g := NewHex(75)
	f := func(x, y float64) bool {
		p := geo.XY{X: math.Mod(x, 1e4), Y: math.Mod(y, 1e4)}
		c := g.CellAt(p)
		// A point 1 meter away lands in the same cell or a neighbor.
		q := geo.XY{X: p.X + 1, Y: p.Y}
		d := g.Distance(c, g.CellAt(q))
		return d <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

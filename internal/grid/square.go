package grid

import (
	"math"

	"kamel/internal/geo"
)

// Square is an axis-aligned square grid in the spirit of Google S2 cells,
// implemented for the paper's grid-type comparison (§8.5, Fig 12-III).  The
// paper sets the square edge so that the cell area approximately matches the
// hexagon area (a 120 m square vs a 75 m hexagon edge).
//
// As the paper observes, squares have a non-uniform neighborhood: four edge
// neighbors and four corner neighbors with different centroid distances and
// shared-border lengths.  Neighbors here returns the four edge neighbors;
// Distance is Chebyshev distance so that diagonal movement is representable,
// mirroring how vehicles cross cell corners.
type Square struct {
	edge float64
}

// NewSquare returns a square grid with the given edge length in meters.  It
// panics if edge is not positive.
func NewSquare(edgeMeters float64) *Square {
	if edgeMeters <= 0 {
		panic("grid: square edge length must be positive")
	}
	return &Square{edge: edgeMeters}
}

// SquareEdgeForHexArea returns the square edge length whose cell area equals
// that of a hexagon with the given edge length, used to make the Fig 12-III
// comparison area-fair.
func SquareEdgeForHexArea(hexEdgeMeters float64) float64 {
	return math.Sqrt(3 * math.Sqrt(3) / 2 * hexEdgeMeters * hexEdgeMeters)
}

// Kind implements Grid.
func (s *Square) Kind() string { return "square" }

// EdgeMeters implements Grid.
func (s *Square) EdgeMeters() float64 { return s.edge }

// CellAreaM2 implements Grid.
func (s *Square) CellAreaM2() float64 { return s.edge * s.edge }

// StepMeters implements Grid: under Chebyshev distance the farthest
// distance-1 neighbor is the diagonal one, sqrt(2)·edge away.
func (s *Square) StepMeters() float64 { return math.Sqrt2 * s.edge }

// CellAt implements Grid.
func (s *Square) CellAt(p geo.XY) Cell {
	ix := int32(math.Floor(p.X / s.edge))
	iy := int32(math.Floor(p.Y / s.edge))
	return pack(ix, iy)
}

// Centroid implements Grid.
func (s *Square) Centroid(c Cell) geo.XY {
	ix, iy := unpack(c)
	return geo.XY{
		X: (float64(ix) + 0.5) * s.edge,
		Y: (float64(iy) + 0.5) * s.edge,
	}
}

// Neighbors implements Grid, returning the four edge neighbors east, north,
// west, south.
func (s *Square) Neighbors(c Cell) []Cell {
	ix, iy := unpack(c)
	return []Cell{
		pack(ix+1, iy), pack(ix, iy+1), pack(ix-1, iy), pack(ix, iy-1),
	}
}

// Distance implements Grid using Chebyshev distance.
func (s *Square) Distance(a, b Cell) int {
	ax, ay := unpack(a)
	bx, by := unpack(b)
	return max(abs(int(ax)-int(bx)), abs(int(ay)-int(by)))
}

// Line implements Grid by uniformly sampling the segment between the two cell
// centers, one sample per Chebyshev step.
func (s *Square) Line(a, b Cell) []Cell {
	n := s.Distance(a, b)
	if n == 0 {
		return []Cell{a}
	}
	ca, cb := s.Centroid(a), s.Centroid(b)
	out := make([]Cell, 0, n+1)
	var prev Cell
	for i := 0; i <= n; i++ {
		t := float64(i) / float64(n)
		c := s.CellAt(ca.Add(cb.Sub(ca).Scale(t)))
		if i == 0 || c != prev {
			out = append(out, c)
			prev = c
		}
	}
	return out
}

// Disk implements Grid: all cells within Chebyshev distance k.
func (s *Square) Disk(c Cell, k int) []Cell {
	ix, iy := unpack(c)
	out := make([]Cell, 0, (2*k+1)*(2*k+1))
	for dx := -k; dx <= k; dx++ {
		for dy := -k; dy <= k; dy++ {
			out = append(out, pack(ix+int32(dx), iy+int32(dy)))
		}
	}
	return out
}

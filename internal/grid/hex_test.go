package grid

import (
	"math"
	"testing"
	"testing/quick"

	"kamel/internal/geo"
)

func TestHexCellAtCentroidRoundTrip(t *testing.T) {
	h := NewHex(75)
	f := func(x, y float64) bool {
		p := geo.XY{X: math.Mod(x, 5e4), Y: math.Mod(y, 5e4)}
		c := h.CellAt(p)
		// The point must be within the circumradius (= edge) of its centroid.
		if h.Centroid(c).Dist(p) > h.EdgeMeters()+1e-6 {
			return false
		}
		// The centroid must map back to the same cell.
		return h.CellAt(h.Centroid(c)) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHexNeighborsUniformity(t *testing.T) {
	// The paper's core argument for hexagons (§3.1): all six neighbors sit at
	// the same centroid distance.
	h := NewHex(75)
	c := h.CellAt(geo.XY{X: 1234, Y: 5678})
	nb := h.Neighbors(c)
	if len(nb) != 6 {
		t.Fatalf("hex cell has %d neighbors, want 6", len(nb))
	}
	want := math.Sqrt(3) * 75 // center-to-center distance for edge 75
	seen := map[Cell]bool{c: true}
	for _, n := range nb {
		if seen[n] {
			t.Errorf("duplicate or self neighbor %v", n)
		}
		seen[n] = true
		got := CentroidDistance(h, c, n)
		if math.Abs(got-want) > 1e-6 {
			t.Errorf("neighbor distance %f, want %f", got, want)
		}
		if h.Distance(c, n) != 1 {
			t.Errorf("grid distance to neighbor = %d, want 1", h.Distance(c, n))
		}
	}
}

func TestHexDistanceProperties(t *testing.T) {
	h := NewHex(50)
	f := func(x1, y1, x2, y2 float64) bool {
		a := h.CellAt(geo.XY{X: math.Mod(x1, 2e4), Y: math.Mod(y1, 2e4)})
		b := h.CellAt(geo.XY{X: math.Mod(x2, 2e4), Y: math.Mod(y2, 2e4)})
		d := h.Distance(a, b)
		if d < 0 || d != h.Distance(b, a) {
			return false
		}
		if (d == 0) != (a == b) {
			return false
		}
		// Grid distance is consistent with Euclidean distance: d hops cover
		// at most d * centroidSpacing meters.
		spacing := math.Sqrt(3) * h.EdgeMeters()
		eu := CentroidDistance(h, a, b)
		return eu <= float64(d)*spacing+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHexLine(t *testing.T) {
	h := NewHex(75)
	a := h.CellAt(geo.XY{X: 0, Y: 0})
	b := h.CellAt(geo.XY{X: 3000, Y: 1700})
	line := h.Line(a, b)
	if line[0] != a || line[len(line)-1] != b {
		t.Fatal("line must start at a and end at b")
	}
	for i := 1; i < len(line); i++ {
		if h.Distance(line[i-1], line[i]) != 1 {
			t.Errorf("line step %d jumps distance %d", i, h.Distance(line[i-1], line[i]))
		}
	}
	if got := h.Line(a, a); len(got) != 1 || got[0] != a {
		t.Error("degenerate line must be the single cell")
	}
}

func TestHexDisk(t *testing.T) {
	h := NewHex(75)
	c := h.CellAt(geo.XY{X: 500, Y: 500})
	for k := 0; k <= 3; k++ {
		disk := h.Disk(c, k)
		want := 1 + 3*k*(k+1) // centered hexagonal number
		if len(disk) != want {
			t.Errorf("Disk(k=%d) has %d cells, want %d", k, len(disk), want)
		}
		seen := map[Cell]bool{}
		for _, d := range disk {
			if seen[d] {
				t.Errorf("Disk(k=%d) returned duplicate %v", k, d)
			}
			seen[d] = true
			if h.Distance(c, d) > k {
				t.Errorf("Disk(k=%d) returned cell at distance %d", k, h.Distance(c, d))
			}
		}
	}
}

func TestHexArea(t *testing.T) {
	h := NewHex(75)
	want := 3 * math.Sqrt(3) / 2 * 75 * 75
	if math.Abs(h.CellAreaM2()-want) > 1e-9 {
		t.Errorf("area = %f, want %f", h.CellAreaM2(), want)
	}
}

func TestNewHexPanicsOnBadEdge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHex(0) must panic")
		}
	}()
	NewHex(0)
}

func TestCellPackUnpack(t *testing.T) {
	f := func(a, b int32) bool {
		q, r := unpack(pack(a, b))
		return q == a && r == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

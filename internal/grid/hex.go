package grid

import (
	"math"

	"kamel/internal/geo"
)

// Hex is a flat-top hexagonal grid with a configurable edge length, the
// default tokenization scheme of KAMEL (paper §3.1).  Every cell has exactly
// six neighbors, all at the same centroid distance and sharing borders of the
// same length — the property the paper argues makes transitions between
// tokens uniform and easier for BERT to learn.
//
// Cells are addressed by axial coordinates (q, r) with the standard cube
// constraint q + r + s = 0.
type Hex struct {
	edge float64
}

// NewHex returns a hexagonal grid whose cells have the given edge length in
// meters.  It panics if edge is not positive — a zero-size tessellation is a
// programming error, not a runtime condition.
func NewHex(edgeMeters float64) *Hex {
	if edgeMeters <= 0 {
		panic("grid: hex edge length must be positive")
	}
	return &Hex{edge: edgeMeters}
}

// Kind implements Grid.
func (h *Hex) Kind() string { return "hex" }

// EdgeMeters implements Grid.
func (h *Hex) EdgeMeters() float64 { return h.edge }

// CellAreaM2 implements Grid.  A regular hexagon with edge a has area
// (3*sqrt(3)/2) * a^2.
func (h *Hex) CellAreaM2() float64 { return 3 * math.Sqrt(3) / 2 * h.edge * h.edge }

// StepMeters implements Grid: all six neighbors sit exactly sqrt(3)·edge
// from the cell centroid.
func (h *Hex) StepMeters() float64 { return math.Sqrt(3) * h.edge }

// axialDirs are the six edge-neighbor offsets of a hexagonal cell, starting
// east and proceeding counterclockwise.
var axialDirs = [6][2]int32{
	{1, 0}, {1, -1}, {0, -1}, {-1, 0}, {-1, 1}, {0, 1},
}

// CellAt implements Grid using the exact fractional axial transform followed
// by cube rounding.
func (h *Hex) CellAt(p geo.XY) Cell {
	// Flat-top hexagon: x = edge * 3/2 * q ; y = edge * sqrt(3) * (r + q/2).
	qf := (2.0 / 3.0) * p.X / h.edge
	rf := (-1.0/3.0*p.X + math.Sqrt(3)/3.0*p.Y) / h.edge
	q, r := cubeRound(qf, rf)
	return pack(q, r)
}

// Centroid implements Grid.
func (h *Hex) Centroid(c Cell) geo.XY {
	q, r := unpack(c)
	return geo.XY{
		X: h.edge * 1.5 * float64(q),
		Y: h.edge * math.Sqrt(3) * (float64(r) + float64(q)/2),
	}
}

// Neighbors implements Grid; the six neighbors are returned starting east,
// counterclockwise.
func (h *Hex) Neighbors(c Cell) []Cell {
	q, r := unpack(c)
	out := make([]Cell, 6)
	for i, d := range axialDirs {
		out[i] = pack(q+d[0], r+d[1])
	}
	return out
}

// Distance implements Grid using cube distance.
func (h *Hex) Distance(a, b Cell) int {
	aq, ar := unpack(a)
	bq, br := unpack(b)
	dq := int(aq) - int(bq)
	dr := int(ar) - int(br)
	ds := -dq - dr
	return (abs(dq) + abs(dr) + abs(ds)) / 2
}

// Line implements Grid by sampling the cube-space line between the two cell
// centers and rounding each sample, the standard hex line-drawing algorithm.
func (h *Hex) Line(a, b Cell) []Cell {
	n := h.Distance(a, b)
	if n == 0 {
		return []Cell{a}
	}
	aq, ar := unpack(a)
	bq, br := unpack(b)
	out := make([]Cell, 0, n+1)
	var prev Cell
	for i := 0; i <= n; i++ {
		t := float64(i) / float64(n)
		qf := float64(aq) + (float64(bq)-float64(aq))*t
		rf := float64(ar) + (float64(br)-float64(ar))*t
		q, r := cubeRound(qf, rf)
		c := pack(q, r)
		if i == 0 || c != prev {
			out = append(out, c)
			prev = c
		}
	}
	return out
}

// Disk implements Grid with the standard spiral-ring traversal.
func (h *Hex) Disk(c Cell, k int) []Cell {
	q0, r0 := unpack(c)
	out := make([]Cell, 0, 1+3*k*(k+1))
	for dq := -k; dq <= k; dq++ {
		lo := max(-k, -dq-k)
		hi := min(k, -dq+k)
		for dr := lo; dr <= hi; dr++ {
			out = append(out, pack(q0+int32(dq), r0+int32(dr)))
		}
	}
	return out
}

// cubeRound rounds fractional axial coordinates to the nearest cell.
func cubeRound(qf, rf float64) (int32, int32) {
	sf := -qf - rf
	q := math.Round(qf)
	r := math.Round(rf)
	s := math.Round(sf)
	dq := math.Abs(q - qf)
	dr := math.Abs(r - rf)
	ds := math.Abs(s - sf)
	switch {
	case dq > dr && dq > ds:
		q = -r - s
	case dr > ds:
		r = -q - s
	}
	return int32(q), int32(r)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

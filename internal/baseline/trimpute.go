package baseline

import (
	"math"

	"kamel/internal/geo"
	"kamel/internal/grid"
)

// TrImpute reimplements the crowd-wisdom imputer of Elshrif et al. [20], the
// paper's direct competitor: historical GPS points are bucketed into a fine
// grid; to impute a gap the walker starts at S and repeatedly steps to the
// neighboring cell whose historical traffic best agrees with both the
// observed local headings and the direction towards D.  When the walker
// strands — no historical support nearby, the hallmark failure of the method
// on sparse history that §8.1 reports — the gap falls back to a straight
// line.
type TrImpute struct {
	Proj       *geo.Projection
	CellMeters float64 // fine-grid resolution (default 25 m)
	StepMeters float64 // output point spacing
	MaxSteps   int     // walker budget per gap

	g       *grid.Square
	traffic map[grid.Cell][]float64 // cell -> historical headings (radians)
	trained bool
}

// NewTrImpute returns an untrained TrImpute with the defaults used in the
// harness.
func NewTrImpute(proj *geo.Projection) *TrImpute {
	return &TrImpute{
		Proj:       proj,
		CellMeters: 25,
		StepMeters: 100,
		MaxSteps:   400,
	}
}

// Train ingests historical trajectories, recording per-cell heading samples.
// TrImpute's "training" is exactly this statistics pass — which is why its
// training time is orders of magnitude below KAMEL's (paper §8.3, Fig 11a).
func (t *TrImpute) Train(trajs []geo.Trajectory) {
	t.g = grid.NewSquare(t.CellMeters)
	t.traffic = make(map[grid.Cell][]float64)
	for _, tr := range trajs {
		xys := make([]geo.XY, len(tr.Points))
		for i, p := range tr.Points {
			xys[i] = t.Proj.ToXY(p)
		}
		for i := 0; i+1 < len(xys); i++ {
			h := xys[i+1].Sub(xys[i]).Heading()
			c := t.g.CellAt(xys[i])
			t.traffic[c] = append(t.traffic[c], h)
		}
	}
	t.trained = true
}

// Name implements Imputer.
func (t *TrImpute) Name() string { return "TrImpute" }

// Impute implements Imputer.
func (t *TrImpute) Impute(tr geo.Trajectory) (geo.Trajectory, Stats, error) {
	var stats Stats
	if len(tr.Points) < 2 {
		return tr.Clone(), stats, nil
	}
	out := geo.Trajectory{ID: tr.ID}
	for i := 0; i+1 < len(tr.Points); i++ {
		a, b := tr.Points[i], tr.Points[i+1]
		stats.Segments++
		xa, xb := t.Proj.ToXY(a), t.Proj.ToXY(b)
		path, ok := t.walk(xa, xb)
		if !ok {
			stats.Failures++
			path = []geo.XY{xa, xb}
		}
		line := geo.ResamplePolyline(path, t.StepMeters)
		times := interpolateTimes(line, a.T, b.T)
		for j := 0; j < len(line)-1; j++ {
			p := t.Proj.ToLatLng(line[j])
			p.T = times[j]
			out.Points = append(out.Points, p)
		}
	}
	out.Points = append(out.Points, tr.Points[len(tr.Points)-1])
	return out, stats, nil
}

// walk advances cell by cell from S towards D, steered by the crowd's
// headings.  Fails when no historically supported step exists or the budget
// runs out.
func (t *TrImpute) walk(s, d geo.XY) ([]geo.XY, bool) {
	if !t.trained {
		return nil, false
	}
	cur := s
	path := []geo.XY{s}
	visited := make(map[grid.Cell]int)
	for step := 0; step < t.MaxSteps; step++ {
		if cur.Dist(d) <= 2*t.CellMeters {
			path = append(path, d)
			return path, true
		}
		cell := t.g.CellAt(cur)
		visited[cell]++
		if visited[cell] > 3 {
			return nil, false // spinning in place
		}
		toD := d.Sub(cur).Heading()
		bestScore := math.Inf(-1)
		var bestNext geo.XY
		found := false
		// Candidate steps: toward each 8-neighborhood direction with
		// historical support in the local cell or its ring.
		for _, c := range t.g.Disk(cell, 1) {
			headings := t.traffic[c]
			if len(headings) == 0 {
				continue
			}
			for _, h := range headings {
				// Crowd vote: the heading must roughly agree with the
				// direction to the destination.
				align := math.Cos(geo.AngleDiff(h, toD))
				if align < 0.2 {
					continue
				}
				score := align + 0.02*math.Min(float64(len(headings)), 25)
				if score > bestScore {
					bestScore = score
					bestNext = geo.XY{
						X: cur.X + t.CellMeters*1.2*math.Cos(h),
						Y: cur.Y + t.CellMeters*1.2*math.Sin(h),
					}
					found = true
				}
			}
		}
		if !found {
			return nil, false
		}
		cur = bestNext
		path = append(path, cur)
	}
	return nil, false
}

// Package baseline implements the comparison methods of the paper's
// evaluation (§8): linear interpolation (the floor every technique must
// beat), TrImpute [20] (the state-of-the-art network-free imputer and
// KAMEL's direct competitor), and HMM map matching with shortest-path
// imputation (the reference that IS allowed to read the road network).
package baseline

import "kamel/internal/geo"

// Stats reports per-trajectory imputation accounting.  A segment "fails"
// when the method fell back to inserting a straight line between its end
// points — the paper's failure-rate definition (§8).
type Stats struct {
	Segments int // gaps attempted
	Failures int // gaps imputed as a straight line
	// Degraded counts gaps served by a coarser ancestor model (or the
	// linear fallback) because the best-fitting model was quarantined as
	// corrupt at load time.  Always 0 for the baseline methods; KAMEL's
	// repository sets it so operators can see quarantine-driven quality
	// loss per request.
	Degraded int
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Segments += other.Segments
	s.Failures += other.Failures
	s.Degraded += other.Degraded
}

// FailureRate returns Failures/Segments, or 0 for no segments.
func (s Stats) FailureRate() float64 {
	if s.Segments == 0 {
		return 0
	}
	return float64(s.Failures) / float64(s.Segments)
}

// Imputer fills the gaps of a sparse trajectory with additional points.
// KAMEL's core system and every baseline implement it.
type Imputer interface {
	Name() string
	Impute(tr geo.Trajectory) (geo.Trajectory, Stats, error)
}

// interpolateTimes assigns timestamps to a run of imputed planar points
// between two endpoint times, proportionally to arc length.
func interpolateTimes(points []geo.XY, t0, t1 float64) []float64 {
	n := len(points)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	total := geo.PolylineLength(points)
	if total == 0 {
		for i := range out {
			out[i] = t0
		}
		return out
	}
	var acc float64
	for i := range points {
		if i > 0 {
			acc += points[i-1].Dist(points[i])
		}
		out[i] = t0 + (t1-t0)*acc/total
	}
	return out
}

package baseline

import (
	"math"
	"testing"

	"kamel/internal/geo"
	"kamel/internal/roadnet"
	"kamel/internal/trajgen"
)

func fixture(t *testing.T) (*roadnet.Network, *geo.Projection, []geo.Trajectory) {
	t.Helper()
	cfg := roadnet.DefaultCityConfig()
	cfg.Width, cfg.Height = 1500, 1500
	net := roadnet.GenerateCity(cfg)
	proj := geo.NewProjection(41.15, -8.61)
	gen := trajgen.DefaultConfig(30)
	gen.GPSNoiseMeters = 3
	trajs, err := trajgen.Generate(net, proj, gen)
	if err != nil {
		t.Fatal(err)
	}
	return net, proj, trajs
}

func TestStats(t *testing.T) {
	s := Stats{Segments: 4, Failures: 1}
	s.Add(Stats{Segments: 6, Failures: 2})
	if s.Segments != 10 || s.Failures != 3 {
		t.Errorf("Add wrong: %+v", s)
	}
	if got := s.FailureRate(); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("FailureRate = %f", got)
	}
	if (Stats{}).FailureRate() != 0 {
		t.Error("empty stats failure rate must be 0")
	}
}

func TestLinearImpute(t *testing.T) {
	_, proj, trajs := fixture(t)
	sparse := trajs[0].Sparsify(500)
	l := &Linear{Proj: proj, StepMeters: 100}
	dense, stats, err := l.Impute(sparse)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Segments != len(sparse.Points)-1 {
		t.Errorf("segments = %d, want %d", stats.Segments, len(sparse.Points)-1)
	}
	if stats.Failures != stats.Segments {
		t.Error("linear interpolation must have a 100% failure rate by definition")
	}
	if len(dense.Points) <= len(sparse.Points) {
		t.Error("imputation must add points")
	}
	// No two consecutive output points further apart than the step (+slack).
	for i := 1; i < len(dense.Points); i++ {
		if d := geo.HaversineMeters(dense.Points[i-1], dense.Points[i]); d > 130 {
			t.Errorf("output gap %d is %fm", i, d)
		}
	}
	// Endpoints preserved.
	if dense.Points[0] != sparse.Points[0] || dense.Points[len(dense.Points)-1] != sparse.Points[len(sparse.Points)-1] {
		t.Error("imputation must preserve the original endpoints")
	}
	// Timestamps monotone.
	for i := 1; i < len(dense.Points); i++ {
		if dense.Points[i].T < dense.Points[i-1].T {
			t.Error("timestamps must be non-decreasing")
		}
	}
}

func TestLinearShortTrajectories(t *testing.T) {
	_, proj, _ := fixture(t)
	l := &Linear{Proj: proj, StepMeters: 100}
	one := geo.Trajectory{ID: "x", Points: []geo.Point{{Lat: 41.15, Lng: -8.61}}}
	out, stats, err := l.Impute(one)
	if err != nil || len(out.Points) != 1 || stats.Segments != 0 {
		t.Error("single-point trajectory must pass through unchanged")
	}
}

func TestTrImputeFollowsRoads(t *testing.T) {
	net, proj, trajs := fixture(t)
	tr := NewTrImpute(proj)
	tr.Train(trajs[:25])

	sparse := trajs[25].Sparsify(500)
	dense, stats, err := tr.Impute(sparse)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Segments == 0 {
		t.Fatal("no segments processed")
	}
	if stats.FailureRate() > 0.7 {
		t.Errorf("failure rate %f too high with dense history", stats.FailureRate())
	}
	// Imputed points should hug the road network reasonably well.
	var off int
	for _, p := range dense.Points {
		if _, d, ok := net.NearestEdge(proj.ToXY(p)); !ok || d > 60 {
			off++
		}
	}
	if frac := float64(off) / float64(len(dense.Points)); frac > 0.35 {
		t.Errorf("%f of TrImpute points far from roads", frac)
	}
}

func TestTrImputeUntrainedFails(t *testing.T) {
	_, proj, trajs := fixture(t)
	tr := NewTrImpute(proj)
	sparse := trajs[0].Sparsify(500)
	_, stats, err := tr.Impute(sparse)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Failures != stats.Segments {
		t.Error("untrained TrImpute must fail every segment")
	}
}

func TestTrImputeDegradesWithSparseHistory(t *testing.T) {
	_, proj, trajs := fixture(t)
	dense := NewTrImpute(proj)
	dense.Train(trajs[:25])
	sparse := NewTrImpute(proj)
	sparse.Train(trajs[:2]) // almost no history

	probe := trajs[25].Sparsify(600)
	_, denseStats, _ := dense.Impute(probe)
	_, sparseStats, _ := sparse.Impute(probe)
	if sparseStats.FailureRate() < denseStats.FailureRate() {
		t.Errorf("sparse history (%f) should fail at least as much as dense (%f)",
			sparseStats.FailureRate(), denseStats.FailureRate())
	}
}

func TestMapMatchReconstructsPath(t *testing.T) {
	net, proj, trajs := fixture(t)
	mm := NewMapMatch(proj, net)
	sparse := trajs[0].Sparsify(500)
	dense, stats, err := mm.Impute(sparse)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Segments == 0 {
		t.Fatal("no segments processed")
	}
	if stats.FailureRate() > 0.1 {
		t.Errorf("map matching with the true network should rarely fail: %f", stats.FailureRate())
	}
	// Every imputed point must lie on the network (it follows roads).
	for _, p := range dense.Points {
		if _, d, ok := net.NearestEdge(proj.ToXY(p)); !ok || d > 25 {
			t.Errorf("map-matched point %fm from any road", d)
		}
	}
	// The imputed path must recover most of the ground truth: compare
	// against the original dense trajectory via mean point distance.
	truth := trajs[0].XYs(proj)
	var worst float64
	for _, p := range truth {
		d := geo.PointPolylineDist(p, dense.XYs(proj))
		if d > worst {
			worst = d
		}
	}
	if worst > 120 {
		t.Errorf("worst ground-truth deviation %fm; matching went astray", worst)
	}
}

func TestMapMatchShortTrajectory(t *testing.T) {
	net, proj, _ := fixture(t)
	mm := NewMapMatch(proj, net)
	one := geo.Trajectory{ID: "x", Points: []geo.Point{{Lat: 41.15, Lng: -8.61}}}
	out, _, err := mm.Impute(one)
	if err != nil || len(out.Points) != 1 {
		t.Error("single-point trajectory must pass through unchanged")
	}
}

func TestInterpolateTimes(t *testing.T) {
	pts := []geo.XY{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 30, Y: 0}}
	times := interpolateTimes(pts, 100, 130)
	want := []float64{100, 110, 130}
	for i := range want {
		if math.Abs(times[i]-want[i]) > 1e-9 {
			t.Errorf("time %d = %f, want %f", i, times[i], want[i])
		}
	}
	// Degenerate: all points identical.
	same := []geo.XY{{X: 5, Y: 5}, {X: 5, Y: 5}}
	times = interpolateTimes(same, 7, 9)
	if times[0] != 7 || times[1] != 7 {
		t.Error("zero-length polyline must pin times to t0")
	}
	if got := interpolateTimes(nil, 0, 1); len(got) != 0 {
		t.Error("empty input must give empty output")
	}
}

package baseline

import (
	"kamel/internal/geo"
)

// Linear imputes every gap with points placed on the straight line between
// the gap's end points, one every StepMeters.  By the paper's definition its
// failure rate is 100%: every segment is a linear fill.
type Linear struct {
	Proj       *geo.Projection
	StepMeters float64 // spacing of inserted points (the harness uses max_gap)
}

// Name implements Imputer.
func (l *Linear) Name() string { return "Linear" }

// Impute implements Imputer.
func (l *Linear) Impute(tr geo.Trajectory) (geo.Trajectory, Stats, error) {
	var stats Stats
	if len(tr.Points) < 2 {
		return tr.Clone(), stats, nil
	}
	out := geo.Trajectory{ID: tr.ID}
	for i := 0; i+1 < len(tr.Points); i++ {
		a, b := tr.Points[i], tr.Points[i+1]
		stats.Segments++
		stats.Failures++ // linear by definition
		xa, xb := l.Proj.ToXY(a), l.Proj.ToXY(b)
		line := geo.ResamplePolyline([]geo.XY{xa, xb}, l.StepMeters)
		times := interpolateTimes(line, a.T, b.T)
		// Emit a..interior; b is emitted as the next segment's a (or below).
		for j := 0; j < len(line)-1; j++ {
			p := l.Proj.ToLatLng(line[j])
			p.T = times[j]
			out.Points = append(out.Points, p)
		}
	}
	out.Points = append(out.Points, tr.Points[len(tr.Points)-1])
	return out, stats, nil
}

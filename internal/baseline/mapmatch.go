package baseline

import (
	"fmt"
	"math"
	"sort"

	"kamel/internal/geo"
	"kamel/internal/roadnet"
)

// MapMatch is the reference method that, unlike KAMEL and its competitors,
// reads the true road network (paper §8: "we do not consider map matching as
// a competitor").  It HMM-matches each sparse point to candidate road nodes
// (Viterbi over Gaussian emissions and route-vs-straight-line transitions,
// after Yang & Gidófalvi [74]) and imputes each gap with the road-network
// shortest path between the matched nodes.
type MapMatch struct {
	Proj       *geo.Projection
	Net        *roadnet.Network
	StepMeters float64 // output point spacing
	SigmaM     float64 // GPS noise scale for emissions (default 15)
	BetaM      float64 // route-deviation scale for transitions (default 200)
	Candidates int     // candidate nodes per point (default 3)
}

// NewMapMatch returns a matcher over the given true network.
func NewMapMatch(proj *geo.Projection, net *roadnet.Network) *MapMatch {
	return &MapMatch{
		Proj:       proj,
		Net:        net,
		StepMeters: 100,
		SigmaM:     15,
		BetaM:      200,
		Candidates: 3,
	}
}

// Name implements Imputer.
func (m *MapMatch) Name() string { return "MapMatch" }

// Impute implements Imputer.
func (m *MapMatch) Impute(tr geo.Trajectory) (geo.Trajectory, Stats, error) {
	var stats Stats
	if len(tr.Points) < 2 {
		return tr.Clone(), stats, nil
	}
	xys := tr.XYs(m.Proj)
	matched, err := m.viterbi(xys)
	if err != nil {
		return geo.Trajectory{}, stats, err
	}
	out := geo.Trajectory{ID: tr.ID}
	for i := 0; i+1 < len(tr.Points); i++ {
		stats.Segments++
		var line []geo.XY
		path, _, ok := m.Net.ShortestPath(matched[i], matched[i+1])
		if ok && len(path) >= 1 {
			line = m.Net.PathPolyline(path)
			// Anchor the ends at the observed points for fair metrics.
			line = append([]geo.XY{xys[i]}, line...)
			line = append(line, xys[i+1])
		} else {
			stats.Failures++
			line = []geo.XY{xys[i], xys[i+1]}
		}
		resampled := geo.ResamplePolyline(line, m.StepMeters)
		times := interpolateTimes(resampled, tr.Points[i].T, tr.Points[i+1].T)
		for j := 0; j < len(resampled)-1; j++ {
			p := m.Proj.ToLatLng(resampled[j])
			p.T = times[j]
			out.Points = append(out.Points, p)
		}
	}
	out.Points = append(out.Points, tr.Points[len(tr.Points)-1])
	return out, stats, nil
}

// candidateNodes returns the k nearest network nodes to p.
func (m *MapMatch) candidateNodes(p geo.XY) []int {
	// Gather nodes from nearby edges, then rank by distance.
	set := map[int]bool{}
	for _, e := range m.Net.EdgesNear(p, 300) {
		set[e.A] = true
		set[e.B] = true
	}
	if len(set) == 0 {
		if n := m.Net.NearestNode(p); n >= 0 {
			set[n] = true
		}
	}
	nodes := make([]int, 0, len(set))
	for n := range set {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool {
		return m.Net.Pos[nodes[i]].Dist(p) < m.Net.Pos[nodes[j]].Dist(p)
	})
	if len(nodes) > m.Candidates {
		nodes = nodes[:m.Candidates]
	}
	return nodes
}

// viterbi assigns one network node per GPS point maximizing the HMM joint
// probability.
func (m *MapMatch) viterbi(xys []geo.XY) ([]int, error) {
	n := len(xys)
	cands := make([][]int, n)
	for i, p := range xys {
		cands[i] = m.candidateNodes(p)
		if len(cands[i]) == 0 {
			return nil, fmt.Errorf("baseline: no map-match candidates for point %d", i)
		}
	}
	// logProb[i][j]: best log-likelihood ending at candidate j of point i.
	logProb := make([][]float64, n)
	back := make([][]int, n)
	emit := func(p geo.XY, node int) float64 {
		d := m.Net.Pos[node].Dist(p)
		return -d * d / (2 * m.SigmaM * m.SigmaM)
	}
	logProb[0] = make([]float64, len(cands[0]))
	back[0] = make([]int, len(cands[0]))
	for j, node := range cands[0] {
		logProb[0][j] = emit(xys[0], node)
	}
	for i := 1; i < n; i++ {
		logProb[i] = make([]float64, len(cands[i]))
		back[i] = make([]int, len(cands[i]))
		straight := xys[i-1].Dist(xys[i])
		for j, node := range cands[i] {
			best := math.Inf(-1)
			arg := 0
			for k, prev := range cands[i-1] {
				_, route, ok := m.Net.ShortestPath(prev, node)
				trans := math.Inf(-1)
				if ok {
					trans = -math.Abs(route-straight) / m.BetaM
				}
				if v := logProb[i-1][k] + trans; v > best {
					best = v
					arg = k
				}
			}
			logProb[i][j] = best + emit(xys[i], node)
			back[i][j] = arg
		}
	}
	// Backtrack.
	out := make([]int, n)
	bestJ := 0
	for j := range logProb[n-1] {
		if logProb[n-1][j] > logProb[n-1][bestJ] {
			bestJ = j
		}
	}
	for i := n - 1; i >= 0; i-- {
		out[i] = cands[i][bestJ]
		bestJ = back[i][bestJ]
	}
	return out, nil
}

package impute

import (
	"testing"

	"kamel/internal/constraints"
	"kamel/internal/geo"
	"kamel/internal/grid"
	"kamel/internal/tokenizer"
)

// scriptedPredictor replays fixed candidate lists keyed by the gap's
// endpoint cells, approximating the paper's worked examples (Figures 6-7)
// where each BERT call returns a known distribution.
type scriptedPredictor struct {
	g       grid.Grid
	scripts map[[2]grid.Cell][]Candidate
	calls   int
}

func (s *scriptedPredictor) Predict(segment []grid.Cell, gapPos int, topK int) ([]Candidate, error) {
	s.calls++
	key := [2]grid.Cell{segment[gapPos], segment[gapPos+1]}
	if cands, ok := s.scripts[key]; ok {
		return cands, nil
	}
	// Default: bridge with the midpoint.
	a := s.g.Centroid(segment[gapPos])
	b := s.g.Centroid(segment[gapPos+1])
	return []Candidate{{Cell: s.g.CellAt(a.Add(b.Sub(a).Scale(0.5))), Prob: 0.5}}, nil
}

// TestIterativeFillsLeftToRight mirrors the Figure 6 walk-through: the
// algorithm fills the first remaining gap each iteration, so the fill
// proceeds from S towards D as tokens land.
func TestIterativeFillsLeftToRight(t *testing.T) {
	g := grid.NewHex(50)
	ch := constraints.NewChecker(tokenizer.NewFixed(g), 50)
	cfg := DefaultConfig(tokenizer.NewFixed(g), ch)
	cfg.MaxGapMeters = 100 // clamped to one hex step internally

	s := g.CellAt(geo.XY{X: 0, Y: 0})
	d := g.CellAt(geo.XY{X: 400, Y: 0})
	p := &scriptedPredictor{g: g, scripts: map[[2]grid.Cell][]Candidate{}}
	res, err := Iterative(p, cfg, Request{S: s, D: d})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatal("midpoint-bridging predictor must succeed")
	}
	// All consecutive pairs within one hex step of each other.
	for i := 1; i < len(res.Tokens); i++ {
		if g.Distance(res.Tokens[i-1], res.Tokens[i]) > 1 {
			t.Errorf("tokens %d..%d are %d steps apart", i-1, i, g.Distance(res.Tokens[i-1], res.Tokens[i]))
		}
	}
}

// TestBeamPrefersHigherNormalizedScore reproduces the essence of Figure 7:
// between a short low-probability completion and a longer one whose
// normalized score P × |S|^α is higher, the beam must return the higher
// normalized score.
func TestBeamPrefersHigherNormalizedScore(t *testing.T) {
	g := grid.NewHex(50)
	ch := constraints.NewChecker(tokenizer.NewFixed(g), 50)
	cfg := DefaultConfig(tokenizer.NewFixed(g), ch)
	cfg.Beam = 3

	s := g.CellAt(geo.XY{X: 0, Y: 0})
	d := g.CellAt(geo.XY{X: 260, Y: 0}) // 3 hex steps: needs 2 intermediate tokens
	// Direct route cells.
	line := g.Line(s, d)
	if len(line) != 4 {
		t.Skipf("geometry produced %d line cells; test assumes 4", len(line))
	}
	mid1, mid2 := line[1], line[2]
	// Off-route token adjacent to both S and D does not exist at 3 steps, so
	// every completion uses 2 tokens; verify the beam picks the most
	// probable chain among the scripted options.
	p := &scriptedPredictor{g: g, scripts: map[[2]grid.Cell][]Candidate{
		{s, d}: {{Cell: mid1, Prob: 0.6}, {Cell: mid2, Prob: 0.4}},
	}}
	res, err := Beam(p, cfg, Request{S: s, D: d})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatal("beam failed on a bridgeable gap")
	}
	if res.Prob <= 0 {
		t.Errorf("normalized probability %f must be positive", res.Prob)
	}
	if res.Tokens[0] != s || res.Tokens[len(res.Tokens)-1] != d {
		t.Error("endpoints lost")
	}
}

// TestBeamWidthHonored: the predictor is never asked to expand more than
// beam-many segments per iteration (call count stays far below an unbounded
// search on a branchy script).
func TestBeamWidthHonored(t *testing.T) {
	g := grid.NewHex(50)
	ch := constraints.NewChecker(tokenizer.NewFixed(g), 50)
	cfg := DefaultConfig(tokenizer.NewFixed(g), ch)
	cfg.Beam = 2
	cfg.MaxCalls = 500

	s := g.CellAt(geo.XY{X: 0, Y: 0})
	d := g.CellAt(geo.XY{X: 600, Y: 0})
	p := &scriptedPredictor{g: g, scripts: map[[2]grid.Cell][]Candidate{}}
	res, err := Beam(p, cfg, Request{S: s, D: d})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatal("unexpected failure")
	}
	// With beam 2, each iteration expands at most 2 segments × their gaps;
	// a 7-token fill must take far fewer than 100 calls.
	if p.calls > 100 {
		t.Errorf("beam 2 used %d calls; width not enforced?", p.calls)
	}
}

// Package impute implements KAMEL's Multipoint Imputation module (paper §6):
// filling a trajectory gap between two tokens with a *sequence* of tokens,
// which BERT alone — designed to predict one missing word — cannot do.  Two
// strategies are provided: iterative BERT calling (Algorithm 1), the greedy
// approach, and bidirectional beam search (Algorithm 2), which tracks the B
// most probable partial segments across all gaps and normalizes sequence
// probabilities by length (P × |S|^α) so longer imputations are not unfairly
// penalized.
package impute

import (
	"context"
	"fmt"
	"math"
	"time"

	"kamel/internal/constraints"
	"kamel/internal/grid"
	"kamel/internal/tokenizer"
)

// Candidate is one predicted gap filler.
type Candidate = constraints.Candidate

// Predictor abstracts the BERT call of Figure 1: given a token segment and a
// gap position (a token is to be inserted between segment[gapPos] and
// segment[gapPos+1]), return up to topK candidate tokens with probabilities.
// KAMEL's core wires a trained BERT model behind this; tests use synthetic
// predictors.
type Predictor interface {
	Predict(segment []grid.Cell, gapPos int, topK int) ([]Candidate, error)
}

// Config parameterizes both imputation algorithms.
type Config struct {
	Tokenizer    tokenizer.Tokenizer
	Checker      *constraints.Checker
	MaxGapMeters float64 // max_gap: adjacent output tokens must be closer than this
	MaxCalls     int     // hard budget of Predictor calls per segment (paper §6)
	TopK         int     // candidates requested per call
	Beam         int     // beam width B (Algorithm 2)
	Alpha        float64 // length-normalization strength α in [0,1]

	// Observe, when non-nil, receives the wall time of each internal stage
	// of a search: "impute.predict" for every batched predictor call and
	// "impute.constraints" for every round of candidate validation (filter,
	// cycle, and path-length checks).  The core pipeline wires this to the
	// observability layer (internal/obs); when nil the algorithms take no
	// timestamps at all, so un-observed searches pay nothing.
	Observe func(stage string, d time.Duration)
}

// DefaultConfig returns the paper's defaults: max_gap 100 m, beam 10, α=1.
func DefaultConfig(tk tokenizer.Tokenizer, ch *constraints.Checker) Config {
	return Config{
		Tokenizer:    tk,
		Checker:      ch,
		MaxGapMeters: 100,
		MaxCalls:     300,
		TopK:         20,
		Beam:         10,
		Alpha:        1,
	}
}

// Validate reports the first problem with the configuration.
func (c Config) Validate() error {
	switch {
	case c.Tokenizer == nil:
		return fmt.Errorf("impute: nil tokenizer")
	case c.Checker == nil:
		return fmt.Errorf("impute: nil checker")
	case c.MaxGapMeters <= 0:
		return fmt.Errorf("impute: MaxGapMeters must be positive")
	case c.MaxCalls <= 0:
		return fmt.Errorf("impute: MaxCalls must be positive")
	case c.TopK <= 0:
		return fmt.Errorf("impute: TopK must be positive")
	case c.Beam <= 0:
		return fmt.Errorf("impute: Beam must be positive")
	case c.Alpha < 0 || c.Alpha > 1:
		return fmt.Errorf("impute: Alpha %f outside [0,1]", c.Alpha)
	}
	return nil
}

// Request describes one gap to impute: the segment end tokens, optional
// context tokens outside the gap, and the end-to-end time difference.
type Request struct {
	S, D     grid.Cell
	Prev     *grid.Cell
	Next     *grid.Cell
	TimeDiff float64
}

func (r Request) segment() constraints.Segment {
	return constraints.Segment{S: r.S, D: r.D, Prev: r.Prev, Next: r.Next, TimeDiff: r.TimeDiff}
}

// Result is a completed imputation.
type Result struct {
	Tokens []grid.Cell // S ... D inclusive
	Prob   float64     // normalized sequence probability (1 for trivial/failed)
	Calls  int         // Predictor calls consumed
	Failed bool        // true when the algorithm fell back to a straight line
	Reason string      // how the run ended: "ok", "budget", "dead-end"
}

// effectiveMaxGap clamps the configured meter threshold to the tokenizer's
// neighbor step: two adjacent tokens can never be closer than StepMeters, so
// a smaller threshold would make every gap unfillable (the paper's Figure 6
// measures max_gap in token steps for the same reason).
func (c Config) effectiveMaxGap() float64 {
	step := c.Tokenizer.StepMeters() * 1.001
	if c.MaxGapMeters > step {
		return c.MaxGapMeters
	}
	return step
}

// findFirstGap returns the first index i such that tokens i and i+1 are more
// than maxGap apart, or -1 when no gap remains (Algorithm 1's FindFirstGap).
func findFirstGap(tk tokenizer.Tokenizer, tokens []grid.Cell, maxGap float64) int {
	for i := 0; i+1 < len(tokens); i++ {
		if tokenizer.CentroidDistance(tk, tokens[i], tokens[i+1]) > maxGap {
			return i
		}
	}
	return -1
}

// findGaps returns every gap index (Algorithm 2's FindGaps).
func findGaps(tk tokenizer.Tokenizer, tokens []grid.Cell, maxGap float64) []int {
	var out []int
	for i := 0; i+1 < len(tokens); i++ {
		if tokenizer.CentroidDistance(tk, tokens[i], tokens[i+1]) > maxGap {
			out = append(out, i)
		}
	}
	return out
}

// lineFallback imputes the segment with a straight line of tokens — the
// failure behaviour the paper mandates when the call budget is exhausted.
func lineFallback(cfg Config, req Request, reason string) Result {
	return Result{
		Tokens: cfg.Tokenizer.Line(req.S, req.D),
		Prob:   0,
		Failed: true,
		Reason: reason,
	}
}

// Iterative implements Algorithm 1: repeatedly insert the most probable
// valid token into every remaining gap until no gap exceeds max_gap.  It is
// IterativeContext without cancellation.
func Iterative(p Predictor, cfg Config, req Request) (Result, error) {
	return IterativeContext(context.Background(), p, cfg, req)
}

// pathLen returns the summed centroid distance along a token sequence.
func pathLen(tk tokenizer.Tokenizer, tokens []grid.Cell) float64 {
	var sum float64
	for i := 0; i+1 < len(tokens); i++ {
		sum += tokenizer.CentroidDistance(tk, tokens[i], tokens[i+1])
	}
	return sum
}

// insertAt returns a copy of tokens with c inserted at index i.
func insertAt(tokens []grid.Cell, i int, c grid.Cell) []grid.Cell {
	out := make([]grid.Cell, 0, len(tokens)+1)
	out = append(out, tokens[:i]...)
	out = append(out, c)
	out = append(out, tokens[i:]...)
	return out
}

// normalize applies the paper's length normalization P × |S|^α, where |S| is
// the number of imputed tokens.
func normalize(prob float64, imputed int, alpha float64) float64 {
	if imputed <= 0 {
		return prob
	}
	return prob * math.Pow(float64(imputed), alpha)
}

// segKey renders a token sequence as a map key for deduplication.
func segKey(tokens []grid.Cell) string {
	b := make([]byte, 0, len(tokens)*8)
	for _, c := range tokens {
		v := uint64(c)
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24), byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
	}
	return string(b)
}

// beamSeg is one partial imputation tracked by the beam.
type beamSeg struct {
	tokens []grid.Cell
	prob   float64 // raw product of token probabilities
}

// Beam implements Algorithm 2: bidirectional beam search over partial
// segments.  Each iteration expands every remaining gap of every beam
// segment with the top-B valid candidates, keeps the best B new segments,
// concludes the gap-free ones into the answer set with normalized scores,
// and prunes anything scoring below the best concluded answer.  It is
// BeamContext without cancellation.
func Beam(p Predictor, cfg Config, req Request) (Result, error) {
	return BeamContext(context.Background(), p, cfg, req)
}

package impute

import (
	"context"
	"fmt"
	"sort"
	"time"

	"kamel/internal/grid"
)

// This file is the batched, context-aware face of the Multipoint Imputation
// module.  The paper's algorithms are stated one BERT call at a time; here
// every iteration first collects all the masked predictions it is about to
// need — Algorithm 2's whole beam frontier, Algorithm 1's every open gap —
// and submits them as one asynchronous batch (AsyncPredictor.Submit), then
// blocks on the returned Future.  Behind that interface core's admission
// batcher may coalesce the submission with concurrent requests' frontiers
// into shared PredictMaskedBatch engine passes; a plain predictor computes
// inline.  Either way results are element-wise those of sequential Predict
// calls.  The context is checked between batched calls, so a cancelled
// request abandons the search mid-flight without spending the rest of its
// call budget.
//
// Iterative and Beam (impute.go) are thin wrappers over these with
// context.Background().

// Query is one batched prediction request, mirroring Predictor.Predict: a
// token is to be inserted between Segment[GapPos] and Segment[GapPos+1].
type Query struct {
	Segment []grid.Cell
	GapPos  int
	TopK    int
}

// BatchPredictor is a Predictor that can answer many queries in one engine
// pass.  Results are per-query, in query order, and must match what
// sequential Predict calls would return.
type BatchPredictor interface {
	Predictor
	PredictBatch(queries []Query) ([][]Candidate, error)
}

// seqBatch adapts a single-call Predictor to BatchPredictor with a loop, so
// n-gram baselines and synthetic test predictors keep working unchanged.
type seqBatch struct {
	Predictor
}

func (s seqBatch) PredictBatch(queries []Query) ([][]Candidate, error) {
	out := make([][]Candidate, len(queries))
	for i, q := range queries {
		cands, err := s.Predict(q.Segment, q.GapPos, q.TopK)
		if err != nil {
			return nil, err
		}
		out[i] = cands
	}
	return out, nil
}

// AsBatch returns p unchanged when it already implements BatchPredictor, and
// otherwise wraps it so batches are answered by sequential Predict calls.
func AsBatch(p Predictor) BatchPredictor {
	if bp, ok := p.(BatchPredictor); ok {
		return bp
	}
	return seqBatch{p}
}

// Future is a pending asynchronous prediction: Wait blocks until every query
// of the submission resolved (one candidate list per query, in query order)
// or ctx ends.  Wait may be called at most once.
type Future interface {
	Wait(ctx context.Context) ([][]Candidate, error)
}

// AsyncPredictor is the submission face of the prediction engine: Submit
// enqueues a batch of queries and returns immediately with a Future, leaving
// the engine free to coalesce queries from concurrent requests into shared
// passes (core's admission batcher implements this).  Results must be
// element-wise equal to sequential Predict calls — admission batching is a
// throughput device, never a semantic one.  Request metadata (priority,
// deadline) rides on ctx, placed there by the serving layer.
type AsyncPredictor interface {
	Submit(ctx context.Context, queries []Query) (Future, error)
}

// readyFuture is an already-resolved Future, used by the sync adapter.
type readyFuture struct {
	out []([]Candidate)
	err error
}

func (f readyFuture) Wait(context.Context) ([][]Candidate, error) { return f.out, f.err }

// syncAsync adapts any Predictor to AsyncPredictor by computing the batch
// inline at Submit time.  It is the degenerate async predictor: no queueing,
// no cross-request coalescing, used for n-gram baselines, tests, and
// ablations that disable admission batching.
type syncAsync struct {
	bp BatchPredictor
}

func (s syncAsync) Submit(ctx context.Context, queries []Query) (Future, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	out, err := s.bp.PredictBatch(queries)
	return readyFuture{out: out, err: err}, nil
}

// AsAsync returns p unchanged when it already implements AsyncPredictor, and
// otherwise wraps it so submissions are computed inline.  The impute
// algorithms accept any Predictor and upgrade through this, so a plain
// Predict-only baseline, a batch-capable engine, and the admission-batched
// serving path all run the same search code.
func AsAsync(p Predictor) AsyncPredictor {
	if ap, ok := p.(AsyncPredictor); ok {
		return ap
	}
	return syncAsync{bp: AsBatch(p)}
}

// ctxErr wraps a context error for propagation through the impute layer.
func ctxErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("impute: %w", err)
	}
	return nil
}

// Stage names reported through Config.Observe.
const (
	StagePredict     = "impute.predict"     // batched predictor (BERT) calls
	StageConstraints = "impute.constraints" // candidate validation per round
)

// predictTimed submits one batch of queries through the async interface and
// waits for the future, reporting wall time (queue wait + engine pass) to the
// configured observer.  With no observer it skips the clock reads.
func predictTimed(ctx context.Context, ap AsyncPredictor, cfg Config, queries []Query) ([][]Candidate, error) {
	if cfg.Observe == nil {
		return submitWait(ctx, ap, queries)
	}
	t0 := time.Now()
	out, err := submitWait(ctx, ap, queries)
	cfg.Observe(StagePredict, time.Since(t0))
	return out, err
}

// submitWait is the canonical async round trip: enqueue, then block on the
// future.  Cancellation between submit and resolve surfaces as ctx.Err()
// from Wait; the abandoned items are discarded by the engine's dispatcher.
func submitWait(ctx context.Context, ap AsyncPredictor, queries []Query) ([][]Candidate, error) {
	fut, err := ap.Submit(ctx, queries)
	if err != nil {
		return nil, err
	}
	return fut.Wait(ctx)
}

// IterativeContext is Algorithm 1 with batched calls and cancellation: each
// round finds every gap wider than max_gap, asks the predictor for all of
// them in one batch, and inserts the most probable valid candidate into each
// (right to left, so earlier gap indices stay valid).  A round that inserts
// nothing is a dead end.  The call budget counts queries, not batches, so it
// matches the sequential algorithm's accounting.
func IterativeContext(ctx context.Context, p Predictor, cfg Config, req Request) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if req.S == req.D {
		return Result{Tokens: []grid.Cell{req.S}, Prob: 1}, nil
	}
	ap := AsAsync(p)
	seg := []grid.Cell{req.S, req.D}
	sc := req.segment()
	maxGap := cfg.effectiveMaxGap()
	maxPath := cfg.Checker.MaxPathMeters(sc)
	calls := 0
	prob := 1.0

	for {
		gaps := findGaps(cfg.Tokenizer, seg, maxGap)
		if len(gaps) == 0 {
			return Result{Tokens: seg, Prob: normalize(prob, len(seg)-2, cfg.Alpha), Calls: calls, Reason: "ok"}, nil
		}
		if err := ctxErr(ctx); err != nil {
			return Result{}, err
		}
		if calls+len(gaps) > cfg.MaxCalls {
			// The sequential algorithm would burn the remaining budget on a
			// prefix of these gaps and then fail to a line anyway; skip
			// straight to the fallback with the budget marked spent.
			r := lineFallback(cfg, req, "budget")
			r.Calls = cfg.MaxCalls
			return r, nil
		}
		queries := make([]Query, len(gaps))
		for i, gap := range gaps {
			queries[i] = Query{Segment: seg, GapPos: gap, TopK: cfg.TopK}
		}
		results, err := predictTimed(ctx, ap, cfg, queries)
		if err != nil {
			return Result{}, fmt.Errorf("impute: predictor: %w", err)
		}
		calls += len(gaps)

		// Insert right to left: an insertion at gap g shifts only indices
		// above g, so earlier gaps in the same round stay addressable.
		var checkStart time.Time
		if cfg.Observe != nil {
			checkStart = time.Now()
		}
		inserted := false
		for gi := len(gaps) - 1; gi >= 0; gi-- {
			gap := gaps[gi]
			cands := cfg.Checker.Filter(results[gi], sc)
			for _, cand := range cands {
				if cand.Cell == seg[gap] || cand.Cell == seg[gap+1] {
					continue // trivial cycle with a gap endpoint (§5.2, x=1)
				}
				next := insertAt(seg, gap+1, cand.Cell)
				if cfg.Checker.HasCycle(next[:gap+2]) {
					continue // §5.2: reject outcomes that close a cycle
				}
				if pathLen(cfg.Tokenizer, next) > maxPath {
					continue // §5.1: would exceed the physically drivable length
				}
				seg = next
				prob *= cand.Prob
				inserted = true
				break
			}
		}
		if cfg.Observe != nil {
			cfg.Observe(StageConstraints, time.Since(checkStart))
		}
		if !inserted {
			r := lineFallback(cfg, req, "dead-end")
			r.Calls = calls
			return r, nil
		}
	}
}

// BeamContext is Algorithm 2 with batched calls and cancellation.  Each
// iteration gathers the entire frontier — every remaining gap of every beam
// segment — into one PredictBatch call, then expands, deduplicates, keeps the
// top B, concludes gap-free segments and prunes against the best concluded
// normalized score, exactly as the sequential algorithm does.
func BeamContext(ctx context.Context, p Predictor, cfg Config, req Request) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if req.S == req.D {
		return Result{Tokens: []grid.Cell{req.S}, Prob: 1}, nil
	}
	ap := AsAsync(p)
	sc := req.segment()
	maxGap := cfg.effectiveMaxGap()
	maxPath := cfg.Checker.MaxPathMeters(sc)
	calls := 0

	start := beamSeg{tokens: []grid.Cell{req.S, req.D}, prob: 1}
	if findFirstGap(cfg.Tokenizer, start.tokens, maxGap) < 0 {
		return Result{Tokens: start.tokens, Prob: 1}, nil
	}

	type answer struct {
		tokens []grid.Cell
		score  float64
	}
	var best *answer
	probLimit := 0.0 // lower bound on normalized score, per the §6.2 example

	live := []beamSeg{start}
	for len(live) > 0 {
		// Collect the whole frontier: one query per (segment, gap) pair.
		type expansion struct {
			seg beamSeg
			gap int
		}
		var frontier []expansion
		for _, bs := range live {
			for _, gap := range findGaps(cfg.Tokenizer, bs.tokens, maxGap) {
				frontier = append(frontier, expansion{seg: bs, gap: gap})
			}
		}
		if err := ctxErr(ctx); err != nil {
			return Result{}, err
		}
		if calls+len(frontier) > cfg.MaxCalls {
			// The sequential algorithm spends the remaining budget on a prefix
			// of the frontier and then discards that iteration's partial
			// expansions, so the batched path can skip the work entirely:
			// return the best concluded answer, or fail to a straight line.
			calls = cfg.MaxCalls
			if best != nil {
				return Result{Tokens: best.tokens, Prob: best.score, Calls: calls, Reason: "ok"}, nil
			}
			r := lineFallback(cfg, req, "budget")
			r.Calls = calls
			return r, nil
		}
		queries := make([]Query, len(frontier))
		for i, e := range frontier {
			queries[i] = Query{Segment: e.seg.tokens, GapPos: e.gap, TopK: cfg.TopK}
		}
		results, err := predictTimed(ctx, ap, cfg, queries)
		if err != nil {
			return Result{}, fmt.Errorf("impute: predictor: %w", err)
		}
		calls += len(frontier)

		var checkStart time.Time
		if cfg.Observe != nil {
			checkStart = time.Now()
		}
		var fresh []beamSeg
		for fi, e := range frontier {
			cands := cfg.Checker.Filter(results[fi], sc)
			n := 0
			for _, cand := range cands {
				if n >= cfg.Beam {
					break
				}
				if cand.Cell == e.seg.tokens[e.gap] || cand.Cell == e.seg.tokens[e.gap+1] {
					continue // trivial cycle with a gap endpoint (§5.2, x=1)
				}
				next := insertAt(e.seg.tokens, e.gap+1, cand.Cell)
				if cfg.Checker.HasCycle(next[:e.gap+2]) {
					continue
				}
				if pathLen(cfg.Tokenizer, next) > maxPath {
					continue // §5.1: exceeds the drivable length bound
				}
				fresh = append(fresh, beamSeg{tokens: next, prob: e.seg.prob * cand.Prob})
				n++
			}
		}
		if cfg.Observe != nil {
			cfg.Observe(StageConstraints, time.Since(checkStart))
		}
		if len(fresh) == 0 {
			break
		}
		// Deduplicate segments reachable via different insertion orders,
		// keeping the most probable, then TopB with the probability lower
		// bound (Algorithm 2 line 13).
		sort.Slice(fresh, func(i, j int) bool { return fresh[i].prob > fresh[j].prob })
		seen := make(map[string]bool, len(fresh))
		dedup := fresh[:0]
		for _, bs := range fresh {
			k := segKey(bs.tokens)
			if seen[k] {
				continue
			}
			seen[k] = true
			dedup = append(dedup, bs)
		}
		fresh = dedup
		if len(fresh) > cfg.Beam {
			fresh = fresh[:cfg.Beam]
		}
		live = live[:0]
		for _, bs := range fresh {
			imputed := len(bs.tokens) - 2
			score := normalize(bs.prob, imputed, cfg.Alpha)
			if best != nil && score < probLimit {
				continue // pruned: cannot beat a concluded answer
			}
			if len(findGaps(cfg.Tokenizer, bs.tokens, maxGap)) == 0 {
				if best == nil || score > best.score {
					best = &answer{tokens: bs.tokens, score: score}
					if score > probLimit {
						probLimit = score
					}
				}
				continue
			}
			live = append(live, bs)
		}
	}

	if best == nil {
		r := lineFallback(cfg, req, "dead-end")
		r.Calls = calls
		return r, nil
	}
	return Result{Tokens: best.tokens, Prob: best.score, Calls: calls, Reason: "ok"}, nil
}

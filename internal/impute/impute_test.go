package impute

import (
	"errors"
	"testing"

	"kamel/internal/constraints"
	"kamel/internal/geo"
	"kamel/internal/grid"
	"kamel/internal/tokenizer"
)

// midpointPredictor proposes the cell at the midpoint of the queried gap
// with high probability, plus a decoy far away.  Recursively bisecting every
// gap is guaranteed to converge.
type midpointPredictor struct {
	g grid.Grid
}

func (m midpointPredictor) Predict(segment []grid.Cell, gapPos int, topK int) ([]Candidate, error) {
	a := m.g.Centroid(segment[gapPos])
	b := m.g.Centroid(segment[gapPos+1])
	mid := m.g.CellAt(a.Add(b.Sub(a).Scale(0.5)))
	decoy := m.g.CellAt(a.Add(geo.XY{X: 9e5, Y: 9e5}))
	return []Candidate{{Cell: mid, Prob: 0.8}, {Cell: decoy, Prob: 0.1}}, nil
}

func testCfg() (Config, grid.Grid) {
	g := grid.NewHex(50)
	ch := constraints.NewChecker(tokenizer.NewFixed(g), 30)
	cfg := DefaultConfig(tokenizer.NewFixed(g), ch)
	cfg.MaxGapMeters = 120
	return cfg, g
}

func mkRequest(g grid.Grid, dx float64) Request {
	return Request{
		S:        g.CellAt(geo.XY{X: 0, Y: 0}),
		D:        g.CellAt(geo.XY{X: dx, Y: 0}),
		TimeDiff: dx / 10,
	}
}

func checkDense(t *testing.T, g grid.Grid, tokens []grid.Cell, maxGap float64, req Request) {
	t.Helper()
	if tokens[0] != req.S || tokens[len(tokens)-1] != req.D {
		t.Fatalf("imputed segment must start at S and end at D: %v", tokens)
	}
	for i := 0; i+1 < len(tokens); i++ {
		if d := grid.CentroidDistance(g, tokens[i], tokens[i+1]); d > maxGap {
			t.Errorf("gap %d is %fm, want <= %fm", i, d, maxGap)
		}
	}
}

func TestIterativeFillsGap(t *testing.T) {
	cfg, g := testCfg()
	req := mkRequest(g, 800)
	res, err := Iterative(midpointPredictor{g}, cfg, req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatal("iterative imputation failed on an easy segment")
	}
	checkDense(t, g, res.Tokens, cfg.MaxGapMeters, req)
	if len(res.Tokens) < 6 {
		t.Errorf("800m gap with 120m max produced only %d tokens", len(res.Tokens))
	}
	if res.Calls == 0 || res.Prob <= 0 {
		t.Errorf("suspicious result: %+v", res)
	}
}

func TestBeamFillsGap(t *testing.T) {
	cfg, g := testCfg()
	req := mkRequest(g, 800)
	res, err := Beam(midpointPredictor{g}, cfg, req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatal("beam imputation failed on an easy segment")
	}
	checkDense(t, g, res.Tokens, cfg.MaxGapMeters, req)
}

func TestTrivialSegments(t *testing.T) {
	cfg, g := testCfg()
	s := g.CellAt(geo.XY{X: 0, Y: 0})
	// Same cell.
	res, _ := Iterative(midpointPredictor{g}, cfg, Request{S: s, D: s})
	if len(res.Tokens) != 1 || res.Failed {
		t.Error("same-cell request must be trivial")
	}
	// Already-dense segment: no predictor call needed.
	req := mkRequest(g, 100)
	res, _ = Beam(failingPredictor{}, cfg, req)
	if res.Failed || res.Calls != 0 {
		t.Errorf("dense segment must not call the predictor: %+v", res)
	}
}

// failingPredictor always errors.
type failingPredictor struct{}

func (failingPredictor) Predict([]grid.Cell, int, int) ([]Candidate, error) {
	return nil, errors.New("boom")
}

func TestPredictorErrorsPropagate(t *testing.T) {
	cfg, g := testCfg()
	req := mkRequest(g, 800)
	if _, err := Iterative(failingPredictor{}, cfg, req); err == nil {
		t.Error("iterative must propagate predictor errors")
	}
	if _, err := Beam(failingPredictor{}, cfg, req); err == nil {
		t.Error("beam must propagate predictor errors")
	}
}

// uselessPredictor returns candidates that never survive the constraints.
type uselessPredictor struct{ g grid.Grid }

func (u uselessPredictor) Predict(segment []grid.Cell, gapPos int, topK int) ([]Candidate, error) {
	return []Candidate{{Cell: u.g.CellAt(geo.XY{X: 5e6, Y: 5e6}), Prob: 0.9}}, nil
}

func TestFallbackToLine(t *testing.T) {
	cfg, g := testCfg()
	req := mkRequest(g, 800)
	for name, run := range map[string]func() (Result, error){
		"iterative": func() (Result, error) { return Iterative(uselessPredictor{g}, cfg, req) },
		"beam":      func() (Result, error) { return Beam(uselessPredictor{g}, cfg, req) },
	} {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Failed {
			t.Errorf("%s: must declare failure with useless candidates", name)
		}
		// The fallback is a straight token line from S to D.
		if res.Tokens[0] != req.S || res.Tokens[len(res.Tokens)-1] != req.D {
			t.Errorf("%s: fallback line endpoints wrong", name)
		}
	}
}

func TestCallBudgetEnforced(t *testing.T) {
	cfg, g := testCfg()
	cfg.MaxCalls = 3
	req := mkRequest(g, 3000) // needs ~25 tokens: budget is far too small
	res, err := Iterative(midpointPredictor{g}, cfg, req)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed {
		t.Error("exhausted budget must fail to a line")
	}
	if res.Calls > 3 {
		t.Errorf("made %d calls with budget 3", res.Calls)
	}
}

// trapPredictor builds a scenario where the greedy top choice dead-ends:
// from the initial gap it offers trap (p=0.6, leads nowhere) and good
// (p=0.3, on the path).  Any gap adjacent to the trap cell gets no usable
// candidates; gaps on the good path bisect normally.
type trapPredictor struct {
	g    grid.Grid
	trap grid.Cell
}

func (tp trapPredictor) Predict(segment []grid.Cell, gapPos int, topK int) ([]Candidate, error) {
	a := segment[gapPos]
	b := segment[gapPos+1]
	if a == tp.trap || b == tp.trap {
		// Dead end: only garbage.
		return []Candidate{{Cell: tp.g.CellAt(geo.XY{X: 7e6, Y: 7e6}), Prob: 0.9}}, nil
	}
	ca, cb := tp.g.Centroid(a), tp.g.Centroid(b)
	mid := tp.g.CellAt(ca.Add(cb.Sub(ca).Scale(0.5)))
	if len(segment) == 2 {
		// First expansion: the greedy trap outranks the good midpoint.
		return []Candidate{{Cell: tp.trap, Prob: 0.6}, {Cell: mid, Prob: 0.3}}, nil
	}
	return []Candidate{{Cell: mid, Prob: 0.8}}, nil
}

func TestBeamRecoversWhereGreedyFails(t *testing.T) {
	cfg, g := testCfg()
	req := mkRequest(g, 500)
	// The trap sits between S and D but off to the side, so it passes the
	// constraints yet leads nowhere.
	trap := g.CellAt(geo.XY{X: 250, Y: 200})
	p := trapPredictor{g: g, trap: trap}

	it, err := Iterative(p, cfg, req)
	if err != nil {
		t.Fatal(err)
	}
	if !it.Failed {
		t.Fatal("greedy should dead-end in the trap scenario")
	}
	bm, err := Beam(p, cfg, req)
	if err != nil {
		t.Fatal(err)
	}
	if bm.Failed {
		t.Fatal("beam should recover via the lower-probability branch")
	}
	checkDense(t, g, bm.Tokens, cfg.MaxGapMeters, req)
	for _, tok := range bm.Tokens {
		if tok == trap {
			t.Error("beam result must avoid the trap cell")
		}
	}
}

func TestLengthNormalization(t *testing.T) {
	if got := normalize(0.06, 2, 1); got != 0.12 {
		t.Errorf("normalize(0.06, 2, 1) = %f, want 0.12 (the paper's example)", got)
	}
	if got := normalize(0.5, 0, 1); got != 0.5 {
		t.Error("no imputed tokens: no normalization")
	}
	if got := normalize(0.5, 4, 0); got != 0.5 {
		t.Error("alpha 0 disables normalization")
	}
}

func TestConfigValidate(t *testing.T) {
	cfg, _ := testCfg()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	muts := []func(*Config){
		func(c *Config) { c.Tokenizer = nil },
		func(c *Config) { c.Checker = nil },
		func(c *Config) { c.MaxGapMeters = 0 },
		func(c *Config) { c.MaxCalls = 0 },
		func(c *Config) { c.TopK = 0 },
		func(c *Config) { c.Beam = 0 },
		func(c *Config) { c.Alpha = 2 },
	}
	for i, mut := range muts {
		c := cfg
		mut(&c)
		if c.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestFindGaps(t *testing.T) {
	g := grid.NewHex(50)
	a := g.CellAt(geo.XY{X: 0, Y: 0})
	b := g.CellAt(geo.XY{X: 500, Y: 0})
	c := g.Neighbors(b)[0] // 86.6m from b: under the 120m max gap
	tokens := []grid.Cell{a, b, c}
	tk := tokenizer.NewFixed(g)
	gaps := findGaps(tk, tokens, 120)
	if len(gaps) != 1 || gaps[0] != 0 {
		t.Errorf("findGaps = %v, want [0]", gaps)
	}
	if got := findFirstGap(tk, tokens, 120); got != 0 {
		t.Errorf("findFirstGap = %d", got)
	}
	if got := findFirstGap(tk, tokens[1:], 120); got != -1 {
		t.Errorf("dense segment findFirstGap = %d, want -1", got)
	}
}

package impute

import (
	"context"
	"errors"
	"testing"

	"kamel/internal/grid"
)

// countingBatchPredictor wraps midpointPredictor with a native batch path and
// counts how work arrives, so tests can assert the algorithms batch.
type countingBatchPredictor struct {
	inner        midpointPredictor
	singleCalls  int
	batchCalls   int
	batchQueries int
}

func (c *countingBatchPredictor) Predict(segment []grid.Cell, gapPos int, topK int) ([]Candidate, error) {
	c.singleCalls++
	return c.inner.Predict(segment, gapPos, topK)
}

func (c *countingBatchPredictor) PredictBatch(queries []Query) ([][]Candidate, error) {
	c.batchCalls++
	c.batchQueries += len(queries)
	out := make([][]Candidate, len(queries))
	for i, q := range queries {
		cands, err := c.inner.Predict(q.Segment, q.GapPos, q.TopK)
		if err != nil {
			return nil, err
		}
		out[i] = cands
	}
	return out, nil
}

// TestAsBatch: a native BatchPredictor passes through unchanged; a plain
// Predictor gets the sequential adapter with per-query results in order.
func TestAsBatch(t *testing.T) {
	_, g := testCfg()
	native := &countingBatchPredictor{inner: midpointPredictor{g}}
	if AsBatch(native) != BatchPredictor(native) {
		t.Fatal("AsBatch must return a native BatchPredictor unchanged")
	}

	adapted := AsBatch(midpointPredictor{g})
	req := mkRequest(g, 800)
	seg := []grid.Cell{req.S, req.D}
	queries := []Query{
		{Segment: seg, GapPos: 0, TopK: 5},
		{Segment: seg, GapPos: 0, TopK: 5},
	}
	got, err := adapted.PredictBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("adapter returned %d result lists, want 2", len(got))
	}
	want, _ := midpointPredictor{g}.Predict(seg, 0, 5)
	for _, cands := range got {
		if len(cands) != len(want) || cands[0] != want[0] {
			t.Fatalf("adapter results diverge from sequential Predict: %v vs %v", cands, want)
		}
	}

	errs := AsBatch(failingPredictor{})
	if _, err := errs.PredictBatch(queries); err == nil {
		t.Fatal("adapter must propagate Predict errors")
	}
}

// TestAlgorithmsUseBatchPath: both algorithms must route predictions through
// PredictBatch when the predictor supports it, never the single-call method.
func TestAlgorithmsUseBatchPath(t *testing.T) {
	cfg, g := testCfg()
	req := mkRequest(g, 800)
	for name, run := range map[string]func(p Predictor) (Result, error){
		"iterative": func(p Predictor) (Result, error) { return Iterative(p, cfg, req) },
		"beam":      func(p Predictor) (Result, error) { return Beam(p, cfg, req) },
	} {
		p := &countingBatchPredictor{inner: midpointPredictor{g}}
		res, err := run(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Failed {
			t.Fatalf("%s: unexpected failure", name)
		}
		if p.singleCalls != 0 {
			t.Errorf("%s: made %d single-query calls past the batch path", name, p.singleCalls)
		}
		if p.batchCalls == 0 {
			t.Errorf("%s: never used PredictBatch", name)
		}
		if p.batchQueries != res.Calls {
			t.Errorf("%s: result reports %d calls but predictor saw %d queries", name, res.Calls, p.batchQueries)
		}
		if p.batchCalls >= p.batchQueries && p.batchQueries > 1 {
			t.Errorf("%s: %d batches for %d queries; nothing was batched", name, p.batchCalls, p.batchQueries)
		}
	}
}

// TestContextCancellation: a cancelled context must surface ctx.Err() before
// the predictor is consulted again, leaving the call budget unspent.
func TestContextCancellation(t *testing.T) {
	cfg, g := testCfg()
	req := mkRequest(g, 3000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, run := range map[string]func(p Predictor) (Result, error){
		"iterative": func(p Predictor) (Result, error) { return IterativeContext(ctx, p, cfg, req) },
		"beam":      func(p Predictor) (Result, error) { return BeamContext(ctx, p, cfg, req) },
	} {
		p := &countingBatchPredictor{inner: midpointPredictor{g}}
		_, err := run(p)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: error %v, want context.Canceled", name, err)
		}
		if p.batchQueries != 0 || p.singleCalls != 0 {
			t.Errorf("%s: predictor consulted %d times after cancellation", name, p.batchQueries+p.singleCalls)
		}
	}
}

// TestContextCancelledMidSearch cancels after the first batch: the search
// must stop well before the budget is spent.
func TestContextCancelledMidSearch(t *testing.T) {
	cfg, g := testCfg()
	cfg.MaxCalls = 300
	req := mkRequest(g, 3000)
	ctx, cancel := context.WithCancel(context.Background())
	p := &cancelAfterFirstBatch{inner: midpointPredictor{g}, cancel: cancel}
	_, err := BeamContext(ctx, p, cfg, req)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled", err)
	}
	if p.queries >= cfg.MaxCalls {
		t.Fatalf("spent %d of %d budget despite cancellation", p.queries, cfg.MaxCalls)
	}
}

type cancelAfterFirstBatch struct {
	inner   midpointPredictor
	cancel  context.CancelFunc
	queries int
}

func (c *cancelAfterFirstBatch) Predict(segment []grid.Cell, gapPos int, topK int) ([]Candidate, error) {
	c.queries++
	return c.inner.Predict(segment, gapPos, topK)
}

func (c *cancelAfterFirstBatch) PredictBatch(queries []Query) ([][]Candidate, error) {
	defer c.cancel()
	out := make([][]Candidate, len(queries))
	for i, q := range queries {
		c.queries++
		cands, err := c.inner.Predict(q.Segment, q.GapPos, q.TopK)
		if err != nil {
			return nil, err
		}
		out[i] = cands
	}
	return out, nil
}

// asyncRecorder implements AsyncPredictor natively; the algorithms must route
// every prediction through Submit, never through the sync methods.
type asyncRecorder struct {
	inner       midpointPredictor
	submissions int
	queries     int
	syncCalls   int
}

func (a *asyncRecorder) Predict(segment []grid.Cell, gapPos int, topK int) ([]Candidate, error) {
	a.syncCalls++
	return a.inner.Predict(segment, gapPos, topK)
}

func (a *asyncRecorder) Submit(ctx context.Context, queries []Query) (Future, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	a.submissions++
	a.queries += len(queries)
	out := make([][]Candidate, len(queries))
	for i, q := range queries {
		cands, err := a.inner.Predict(q.Segment, q.GapPos, q.TopK)
		if err != nil {
			return nil, err
		}
		out[i] = cands
	}
	return readyFuture{out: out}, nil
}

// TestAlgorithmsUseAsyncPath: a native AsyncPredictor receives whole
// frontiers through Submit; the sync Predict method is never consulted.
func TestAlgorithmsUseAsyncPath(t *testing.T) {
	cfg, g := testCfg()
	req := mkRequest(g, 800)
	for name, run := range map[string]func(p Predictor) (Result, error){
		"iterative": func(p Predictor) (Result, error) { return Iterative(p, cfg, req) },
		"beam":      func(p Predictor) (Result, error) { return Beam(p, cfg, req) },
	} {
		p := &asyncRecorder{inner: midpointPredictor{g}}
		if AsAsync(p) != AsyncPredictor(p) {
			t.Fatalf("%s: AsAsync must return a native AsyncPredictor unchanged", name)
		}
		res, err := run(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Failed {
			t.Fatalf("%s: unexpected failure", name)
		}
		if p.syncCalls != 0 {
			t.Errorf("%s: %d sync Predict calls bypassed the async path", name, p.syncCalls)
		}
		if p.submissions == 0 {
			t.Errorf("%s: never submitted through the async interface", name)
		}
		if p.queries != res.Calls {
			t.Errorf("%s: result reports %d calls but predictor saw %d queries", name, res.Calls, p.queries)
		}
	}
}

package fsx

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Framed files carry a fixed 16-byte header in front of the payload:
//
//	u32 magic "KFX1" | u32 version | u32 payload length | u32 CRC32(payload)
//
// The frame turns silent corruption (bit rot, torn writes that survived a
// rename race, tooling accidents) into a detected ErrCorrupt at read time,
// which the model repository converts into quarantine-and-degrade rather
// than a failed load.
const (
	frameMagic   = 0x3158464b // "KFX1" little-endian
	frameVersion = 1
	frameHeader  = 16
	// frameMaxPayload bounds the length field so a corrupt header cannot
	// drive a multi-gigabyte allocation.
	frameMaxPayload = 1 << 30
)

// WriteFramed atomically writes payload to name inside a checksummed frame.
func WriteFramed(fsys FS, name string, payload []byte) error {
	buf := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], frameMagic)
	binary.LittleEndian.PutUint32(buf[4:8], frameVersion)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[12:16], crc32.ChecksumIEEE(payload))
	copy(buf[frameHeader:], payload)
	return WriteFileAtomic(fsys, name, buf)
}

// ReadFramed reads a file written by WriteFramed, verifying the frame.
// Integrity failures are reported as errors wrapping ErrCorrupt; plain I/O
// errors (missing file, permission) pass through unwrapped.
func ReadFramed(fsys FS, name string) ([]byte, error) {
	buf, err := ReadFile(fsys, name)
	if err != nil {
		return nil, err
	}
	if len(buf) < frameHeader {
		return nil, fmt.Errorf("%w: %s: short header (%d bytes)", ErrCorrupt, name, len(buf))
	}
	if m := binary.LittleEndian.Uint32(buf[0:4]); m != frameMagic {
		return nil, fmt.Errorf("%w: %s: bad magic %#x", ErrCorrupt, name, m)
	}
	if v := binary.LittleEndian.Uint32(buf[4:8]); v != frameVersion {
		return nil, fmt.Errorf("%w: %s: unsupported frame version %d", ErrCorrupt, name, v)
	}
	length := binary.LittleEndian.Uint32(buf[8:12])
	if length > frameMaxPayload || int(length) != len(buf)-frameHeader {
		return nil, fmt.Errorf("%w: %s: length %d does not match %d payload bytes",
			ErrCorrupt, name, length, len(buf)-frameHeader)
	}
	payload := buf[frameHeader:]
	if sum := crc32.ChecksumIEEE(payload); sum != binary.LittleEndian.Uint32(buf[12:16]) {
		return nil, fmt.Errorf("%w: %s: checksum mismatch", ErrCorrupt, name)
	}
	return payload, nil
}

package fsx

import (
	"errors"
	"io/fs"
	"strings"
	"sync"
)

// ErrInjected is the default error returned by an injected fault.
var ErrInjected = errors.New("fsx: injected fault")

// ErrNoSpace simulates ENOSPC; set it as Fault.Err to exercise
// disk-full handling.
var ErrNoSpace = errors.New("fsx: no space left on device (injected)")

// Fault is a deterministic fault-injecting FS wrapper.  Every mutating
// operation (Create, Write, Sync, Rename, Remove, MkdirAll) increments an
// operation counter; the FailAt'th operation fails with Err instead of
// reaching the inner FS.  This turns "crash during save" into an ordinary
// loop: run the save with FailAt = 1, 2, 3, … and assert the recovery
// invariant after each, which covers every kill point the code can hit.
//
// Read-side corruption is injected separately: files whose path contains
// FlipBitIn have the high bit of the first byte of their first Read flipped,
// simulating bit rot that only integrity checks can catch.
//
// The zero FailAt injects no write faults.  Fault is safe for concurrent use.
type Fault struct {
	Inner FS

	// FailAt fails the Nth mutating operation (1-based); 0 disables.
	FailAt int
	// Torn makes a failing Write a torn write: the first half of the buffer
	// reaches the inner file before the error, as a crash mid-write would.
	Torn bool
	// Err is the injected error; nil means ErrInjected.
	Err error
	// FlipBitIn, when non-empty, corrupts reads of files whose path
	// contains it as a substring.
	FlipBitIn string

	mu  sync.Mutex
	ops int
}

// NewFault wraps inner with an injector that (until configured) passes
// everything through.
func NewFault(inner FS) *Fault { return &Fault{Inner: inner} }

// Ops returns the number of mutating operations observed so far.  A
// kill-point sweep uses it to know when FailAt has passed the end of the
// operation sequence.
func (f *Fault) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// step counts one mutating operation and reports whether it must fail.
func (f *Fault) step() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops++
	return f.FailAt != 0 && f.ops == f.FailAt
}

func (f *Fault) err() error {
	if f.Err != nil {
		return f.Err
	}
	return ErrInjected
}

func (f *Fault) Create(name string) (File, error) {
	if f.step() {
		return nil, f.err()
	}
	file, err := f.Inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, inner: file, name: name}, nil
}

func (f *Fault) Open(name string) (File, error) {
	file, err := f.Inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, inner: file, name: name}, nil
}

func (f *Fault) Rename(oldpath, newpath string) error {
	if f.step() {
		return f.err()
	}
	return f.Inner.Rename(oldpath, newpath)
}

func (f *Fault) Remove(name string) error {
	if f.step() {
		return f.err()
	}
	return f.Inner.Remove(name)
}

func (f *Fault) MkdirAll(path string, perm fs.FileMode) error {
	if f.step() {
		return f.err()
	}
	return f.Inner.MkdirAll(path, perm)
}

func (f *Fault) ReadDir(name string) ([]fs.DirEntry, error) { return f.Inner.ReadDir(name) }

func (f *Fault) SyncDir(dir string) error {
	if f.step() {
		return f.err()
	}
	return f.Inner.SyncDir(dir)
}

// faultFile threads writes, syncs, and reads through the injector.
type faultFile struct {
	f       *Fault
	inner   File
	name    string
	flipped bool
}

func (ff *faultFile) Write(p []byte) (int, error) {
	if ff.f.step() {
		if ff.f.Torn && len(p) > 0 {
			n, _ := ff.inner.Write(p[:len(p)/2])
			return n, ff.f.err()
		}
		return 0, ff.f.err()
	}
	return ff.inner.Write(p)
}

func (ff *faultFile) Sync() error {
	if ff.f.step() {
		return ff.f.err()
	}
	return ff.inner.Sync()
}

func (ff *faultFile) Read(p []byte) (int, error) {
	n, err := ff.inner.Read(p)
	if n > 0 && !ff.flipped && ff.f.FlipBitIn != "" && strings.Contains(ff.name, ff.f.FlipBitIn) {
		p[0] ^= 0x80
		ff.flipped = true
	}
	return n, err
}

func (ff *faultFile) Close() error { return ff.inner.Close() }

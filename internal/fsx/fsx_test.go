package fsx

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileAtomicReplaces(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "state.json")
	if err := WriteFileAtomic(OS(), name, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(OS(), name, []byte("new")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(name)
	if err != nil || string(got) != "new" {
		t.Fatalf("read %q, %v; want \"new\"", got, err)
	}
	if _, err := os.Stat(name + TmpSuffix); !os.IsNotExist(err) {
		t.Errorf("temp file left behind: %v", err)
	}
}

func TestFramedRoundTrip(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "model.bin")
	payload := []byte("weights weights weights")
	if err := WriteFramed(OS(), name, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFramed(OS(), name)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("payload mismatch: %q", got)
	}
	// Empty payloads frame fine too.
	if err := WriteFramed(OS(), name, nil); err != nil {
		t.Fatal(err)
	}
	if got, err := ReadFramed(OS(), name); err != nil || len(got) != 0 {
		t.Errorf("empty payload: %q, %v", got, err)
	}
}

func TestFramedDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "model.bin")
	if err := WriteFramed(OS(), name, []byte("some payload bytes")); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one payload byte, one header byte, and truncate: all must
	// surface as ErrCorrupt, not as garbage payloads.
	cases := map[string][]byte{
		"payload bit-flip": append(append([]byte{}, raw[:frameHeader+3]...), append([]byte{raw[frameHeader+3] ^ 1}, raw[frameHeader+4:]...)...),
		"bad magic":        append([]byte{raw[0] ^ 0xff}, raw[1:]...),
		"truncated":        raw[:len(raw)-5],
		"short header":     raw[:7],
	}
	for label, mutated := range cases {
		if err := os.WriteFile(name, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadFramed(OS(), name); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: got %v, want ErrCorrupt", label, err)
		}
	}
}

func TestFaultFailsNthOp(t *testing.T) {
	dir := t.TempDir()
	ff := NewFault(OS())
	ff.FailAt = 3 // create=1, write=2, sync=3
	f, err := ff.Create(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync: got %v, want ErrInjected", err)
	}
	f.Close()
	if ff.Ops() != 3 {
		t.Errorf("ops = %d, want 3", ff.Ops())
	}
}

func TestFaultTornWrite(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "torn")
	ff := NewFault(OS())
	ff.FailAt = 2 // the write
	ff.Torn = true
	f, err := ff.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("0123456789")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write: got %v", err)
	}
	f.Close()
	got, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "01234" {
		t.Errorf("torn write left %q, want first half", got)
	}
}

func TestFaultNoSpaceErr(t *testing.T) {
	ff := NewFault(OS())
	ff.FailAt = 1
	ff.Err = ErrNoSpace
	if err := WriteFileAtomic(ff, filepath.Join(t.TempDir(), "f"), []byte("x")); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("got %v, want ErrNoSpace", err)
	}
}

func TestFaultBitFlipOnRead(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "model-1-0-0-single.bin")
	if err := WriteFramed(OS(), name, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	ff := NewFault(OS())
	ff.FlipBitIn = "single"
	if _, err := ReadFramed(ff, name); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit-flipped read: got %v, want ErrCorrupt", err)
	}
	// Non-matching files read clean.
	other := filepath.Join(dir, "manifest.json")
	if err := WriteFramed(OS(), other, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFramed(ff, other); err != nil {
		t.Fatalf("clean read through injector: %v", err)
	}
}

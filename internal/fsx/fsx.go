// Package fsx provides the durability primitives KAMEL's persistence layers
// are built on: atomic file replacement (temp file + fsync + rename + parent
// directory fsync), CRC32-framed payload files whose corruption is detected
// on read, and a pluggable FS interface with a deterministic fault-injection
// implementation (see Fault) so every crash-recovery path can be exercised in
// tests without real crashes.
package fsx

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// File is the file-handle surface the persistence layers need.  *os.File
// satisfies it directly.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
}

// FS abstracts the filesystem operations used by KAMEL's durable state
// (model repository, trajectory store metadata).  Implementations must make
// Rename atomic with respect to crashes, as POSIX rename(2) is — the commit
// protocols in this package rely on it.
type FS interface {
	Create(name string) (File, error)
	Open(name string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	MkdirAll(path string, perm fs.FileMode) error
	ReadDir(name string) ([]fs.DirEntry, error)
	// SyncDir fsyncs a directory so a preceding rename or create in it is
	// durable.  Implementations may no-op where the platform cannot.
	SyncDir(dir string) error
}

// OS returns the real filesystem.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) Create(name string) (File, error)             { return os.Create(name) }
func (osFS) Open(name string) (File, error)               { return os.Open(name) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error)   { return os.ReadDir(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// ReadFile reads a whole file through the FS, so fault injectors observe the
// read path.
func ReadFile(fsys FS, name string) ([]byte, error) {
	f, err := fsys.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// TmpSuffix marks in-flight atomic writes; readers and garbage collectors
// can ignore any file carrying it.
const TmpSuffix = ".tmp"

// WriteFileAtomic durably replaces name with data: the bytes are written to
// a sibling temp file, fsynced, renamed over name, and the parent directory
// fsynced.  A crash at any point leaves either the old file or the new file,
// never a torn mixture; a leftover temp file is garbage, not state.
func WriteFileAtomic(fsys FS, name string, data []byte) error {
	tmp := name + TmpSuffix
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("fsx: creating %s: %w", tmp, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("fsx: writing %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("fsx: syncing %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("fsx: closing %s: %w", tmp, err)
	}
	if err := fsys.Rename(tmp, name); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("fsx: committing %s: %w", name, err)
	}
	if err := fsys.SyncDir(filepath.Dir(name)); err != nil {
		return fmt.Errorf("fsx: syncing dir of %s: %w", name, err)
	}
	return nil
}

// ErrCorrupt is wrapped by ReadFramed when a framed file fails its integrity
// checks (bad magic, impossible length, checksum mismatch, truncation).
// Callers distinguish it from I/O errors to decide between quarantine and
// abort.
var ErrCorrupt = errors.New("fsx: corrupt framed file")

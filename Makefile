.PHONY: verify test test-short fault bench lint cluster-test replica-test

verify: ## gofmt + vet + build + full race-enabled test suite
	./scripts/verify.sh

lint: ## the same staticcheck invocation CI runs (go install honnef.co/go/tools/cmd/staticcheck@2024.1.1 first)
	staticcheck ./...

cluster-test: ## the sharding integration suite, race-enabled, same as CI's cluster job
	go test -race -run Cluster ./...

replica-test: ## replication: rendezvous groups, failover, anti-entropy, parallel rebuild (race-enabled, same as CI's replication job)
	go test -race -run 'Replica|AntiEntropy|TrainFanout|Rendezvous|BatchAccounting|ForwardAny|ForwardWrite|ForwardBusy|IngestParallel' ./cmd/kamel/ ./internal/cluster/... ./internal/pyramid/

test:
	go test ./...

test-short:
	go test -short ./...

fault: ## fault-injection suite: kill-points, corruption, overload
	go test -run Fault -count=2 ./...

bench: ## imputation + model-lookup benchmarks + per-stage latencies -> BENCH_impute.json
	./scripts/bench.sh

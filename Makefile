.PHONY: verify test test-short fault bench lint cluster-test replica-test tok-test trace-test load-test load-bench

verify: ## gofmt + vet + build + full race-enabled test suite
	./scripts/verify.sh

lint: ## the same staticcheck invocation CI runs (go install honnef.co/go/tools/cmd/staticcheck@2024.1.1 first)
	staticcheck ./...

cluster-test: ## the sharding integration suite, race-enabled, same as CI's cluster job
	go test -race -run Cluster ./...

replica-test: ## replication: rendezvous groups, failover, anti-entropy, parallel rebuild (race-enabled, same as CI's replication job)
	go test -race -run 'Replica|AntiEntropy|TrainFanout|Rendezvous|BatchAccounting|ForwardAny|ForwardWrite|ForwardBusy|IngestParallel' ./cmd/kamel/ ./internal/cluster/... ./internal/pyramid/

trace-test: ## distributed tracing + SLO suite, race-enabled, same as CI's tracing job: traceparent propagation, trace store, exemplars, federation, SLO burn triggers, and the 3-node stitching acceptance test
	go test -race -run 'Trace|Traceparent|Exemplar|Federated|SLO' ./internal/obs/ ./internal/cluster/ ./cmd/kamel/

tok-test: ## tokenizer suite: pack/unpack properties, adaptive level bits, spec persistence + fault injection, anti-entropy hash gate (race-enabled), then the training-heavy golden-parity and adaptive lifecycle tests (no race: they train BERT models; core's concurrency is raced in `make verify`)
	go test -race ./internal/tokenizer/ ./internal/vocab/
	go test -race -run 'Pack' ./internal/grid/
	go test -race -run 'Tokenizer' ./internal/cluster/
	go test -race -run 'TrainFanoutSpecConvergence' ./cmd/kamel/
	go test -timeout 20m -run 'TestGoldenParityFixedTokenizer|TestAdaptiveTokenizerEndToEnd|TestTokenizerSpecCorruption' ./internal/core/

test:
	go test ./...

test-short:
	go test -short ./...

fault: ## fault-injection suite: kill-points, corruption, overload
	go test -run Fault -count=2 ./...

bench: ## imputation + model-lookup benchmarks + per-stage latencies -> BENCH_impute.json
	./scripts/bench.sh

load-test: ## CI's loadgen smoke: a short open-loop sweep against an in-process node, failing on any internal error
	go test -race -run 'TestLoadgenSmoke' -v ./cmd/kamel/

load-bench: ## record the capacity curves (1-node adaptive, 1-node fixed A/B, 3-node cluster) without the rest of the bench suite
	KAMEL_CAPACITY_OUT=$${KAMEL_CAPACITY_OUT:-CAPACITY.json} go test -run 'TestCapacityRecord' -v -timeout 30m ./cmd/kamel/

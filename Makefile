.PHONY: verify test test-short fault bench

verify: ## gofmt + vet + build + full race-enabled test suite
	./scripts/verify.sh

test:
	go test ./...

test-short:
	go test -short ./...

fault: ## fault-injection suite: kill-points, corruption, overload
	go test -run Fault -count=2 ./...

bench: ## imputation + model-lookup benchmarks + per-stage latencies -> BENCH_impute.json
	./scripts/bench.sh

.PHONY: verify test test-short bench

verify: ## gofmt + vet + build + full race-enabled test suite
	./scripts/verify.sh

test:
	go test ./...

test-short:
	go test -short ./...

bench:
	go test -run '^$$' -bench . -benchmem .

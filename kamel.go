// Package kamel is the public API of this repository: a from-scratch Go
// implementation of KAMEL, the scalable BERT-based trajectory imputation
// system of Musleh & Mokbel (PVLDB 17(3), 2023; demonstrated at SIGMOD
// 2023).  KAMEL inserts realistic points into sparse GPS trajectories
// without any road-network input, by treating trajectories as sentences over
// spatial tokens and asking a BERT masked-language model to fill the gaps.
//
// Quickstart:
//
//	sys, err := kamel.Open(kamel.DefaultConfig("/tmp/kamel"))
//	...
//	err = sys.Train(trainingTrajectories)      // offline: builds BERT models
//	dense, stats, err := sys.Impute(sparse)    // online: fills the gaps
//
// See the examples/ directory for runnable end-to-end programs, DESIGN.md
// for the architecture, and EXPERIMENTS.md for the paper-reproduction
// results.
package kamel

import (
	"context"
	"fmt"

	"kamel/internal/baseline"
	"kamel/internal/core"
	"kamel/internal/geo"
)

// Point is a GPS reading: WGS84 coordinates plus a Unix-seconds timestamp
// (0 when unknown; timestamps power the speed constraints of paper §5.1).
type Point struct {
	Lat  float64
	Lng  float64
	Time float64
}

// Trajectory is an ordered sequence of points from one moving object.
type Trajectory struct {
	ID     string
	Points []Point
}

// Stats reports per-call imputation accounting: how many gaps were
// processed, how many fell back to a straight line (the paper's failure
// rate, §8), and how many were served degraded — by a coarser ancestor
// model or the linear fallback — because the best-fitting persisted model
// was quarantined as corrupt at load time.
type Stats struct {
	Segments int
	Failures int
	Degraded int
}

// FailureRate returns Failures/Segments, or 0 when nothing was processed.
func (s Stats) FailureRate() float64 {
	if s.Segments == 0 {
		return 0
	}
	return float64(s.Failures) / float64(s.Segments)
}

// Strategy selects the multipoint imputation algorithm (paper §6).
type Strategy = core.Strategy

// Available strategies.
const (
	StrategyBeam      = core.StrategyBeam      // bidirectional beam search (default)
	StrategyIterative = core.StrategyIterative // greedy iterative BERT calling
)

// Available spatial tokenizers (Config.Tokenizer).  The fixed tokenizer is
// the paper's uniform grid; the adaptive one derives a density-adaptive
// multi-resolution token space from the first training batch and freezes it
// (see DESIGN.md "Adaptive tokenization").
const (
	TokenizerFixed    = core.TokenizerFixed    // uniform base tessellation (default)
	TokenizerAdaptive = core.TokenizerAdaptive // density-adaptive multi-resolution
)

// Config mirrors the full system configuration; see core.Config for field
// documentation.  Zero fields are filled with the paper's defaults.
type Config = core.Config

// DefaultConfig returns the reproduction-scale defaults with the given
// working directory (where the trajectory store and model repository live).
func DefaultConfig(workdir string) Config {
	return core.DefaultConfig(workdir)
}

// SystemStats summarizes trained state.
type SystemStats = core.Stats

// System is a deployed KAMEL instance.  Train and Impute are safe for
// concurrent use: training serializes internally and publishes immutable
// serving snapshots, which each imputation reads atomically — in-flight
// requests are never paused or torn by a concurrent Train or Maintain.
type System struct {
	inner *core.System
}

// Open creates a KAMEL system with the given configuration.
func Open(cfg Config) (*System, error) {
	inner, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return &System{inner: inner}, nil
}

// Close releases the system's on-disk resources.
func (s *System) Close() error { return s.inner.Close() }

// Stats reports the current trained state.
func (s *System) Stats() SystemStats { return s.inner.SystemStats() }

// ErrNotTrained is returned by the imputation entry points before any model
// has been trained or loaded.
var ErrNotTrained = core.ErrNotTrained

// ErrMaintaining is returned by Maintain when a maintenance loop is already
// running on this system.
var ErrMaintaining = core.ErrMaintaining

// Maintain runs the single background repository maintainer (paper §4.2).
// While it runs, Train returns as soon as the batch is durably stored and
// the expensive model rebuilds happen here, committed to disk incrementally
// and published as immutable serving snapshots — imputation is never paused.
// Maintain blocks until ctx is cancelled (run it in a goroutine) and returns
// ctx.Err(), or ErrMaintaining if a maintainer is already running.
func (s *System) Maintain(ctx context.Context) error { return s.inner.Maintain(ctx) }

// Train ingests a batch of training trajectories: stores them durably,
// updates the spatial model repository, and (re)trains BERT models where the
// paper's thresholds allow (§4.2).  Training produces no imputation output.
// It is TrainContext without cancellation.
func (s *System) Train(trajs []Trajectory) error {
	return s.inner.Train(toInternal(trajs))
}

// TrainContext is Train with cancellation: the context is checked before
// each per-region model training, so a cancelled request stops enriching
// models promptly (already-stored trajectories remain stored).
func (s *System) TrainContext(ctx context.Context, trajs []Trajectory) error {
	return s.inner.TrainContext(ctx, toInternal(trajs))
}

// Impute fills the gaps of one sparse trajectory and returns the dense
// trajectory plus failure accounting.  It is ImputeContext without
// cancellation.
func (s *System) Impute(tr Trajectory) (Trajectory, Stats, error) {
	return s.ImputeContext(context.Background(), tr)
}

// ImputeContext fills the gaps of one sparse trajectory.  The context is
// honored between batched BERT calls: a cancelled request abandons the
// search mid-gap and returns ctx.Err().
func (s *System) ImputeContext(ctx context.Context, tr Trajectory) (Trajectory, Stats, error) {
	dense, st, err := s.inner.ImputeContext(ctx, toInternalOne(tr))
	if err != nil {
		return Trajectory{}, Stats{}, err
	}
	return fromInternal(dense), Stats{Segments: st.Segments, Failures: st.Failures, Degraded: st.Degraded}, nil
}

// BatchResult is one trajectory's outcome from ImputeBatch.
type BatchResult struct {
	Trajectory Trajectory
	Stats      Stats
	Err        error
}

// ImputeBatch imputes a batch of trajectories and returns one result per
// input, in input order.  System-level failures — an untrained system
// (ErrNotTrained), a cancelled or expired context — abort the whole call;
// anything that only affects a single trajectory lands in its BatchResult.
// Results are identical to calling ImputeContext per trajectory.
func (s *System) ImputeBatch(ctx context.Context, trs []Trajectory) ([]BatchResult, error) {
	inner, err := s.inner.ImputeBatch(ctx, toInternal(trs))
	if err != nil {
		return nil, err
	}
	out := make([]BatchResult, len(inner))
	for i, r := range inner {
		if r.Err != nil {
			out[i] = BatchResult{Err: r.Err}
			continue
		}
		out[i] = BatchResult{
			Trajectory: fromInternal(r.Trajectory),
			Stats:      Stats{Segments: r.Stats.Segments, Failures: r.Stats.Failures, Degraded: r.Stats.Degraded},
		}
	}
	return out, nil
}

// StreamResult is one result from the online mode.
type StreamResult struct {
	Trajectory Trajectory
	Stats      Stats
	Err        error
}

// ImputeStream runs KAMEL's online mode: trajectories arriving on in are
// imputed by `workers` goroutines; results appear on the returned channel,
// which closes when in is drained or ctx is cancelled.
func (s *System) ImputeStream(ctx context.Context, in <-chan Trajectory, workers int) <-chan StreamResult {
	innerIn := make(chan geo.Trajectory, workers)
	go func() {
		defer close(innerIn)
		for tr := range in {
			select {
			case innerIn <- toInternalOne(tr):
			case <-ctx.Done():
				return
			}
		}
	}()
	innerOut := s.inner.ImputeStream(ctx, innerIn, workers)
	out := make(chan StreamResult, workers)
	go func() {
		defer close(out)
		for res := range innerOut {
			out <- StreamResult{
				Trajectory: fromInternal(res.Trajectory),
				Stats:      Stats{Segments: res.Stats.Segments, Failures: res.Stats.Failures, Degraded: res.Stats.Degraded},
				Err:        res.Err,
			}
		}
	}()
	return out
}

// TuneResult is one point of the cell-size auto-tuner's curve (Fig 3d).
type TuneResult struct {
	CellEdgeM float64
	Recall    float64
	Precision float64
}

// TuneCellSize implements the auto-tuning module of paper §3.2: it trains
// throwaway models at each candidate hexagon size on a sample of trajs and
// returns the size with the best held-out accuracy, plus the full curve.
func (s *System) TuneCellSize(trajs []Trajectory, sizes []float64, sparseDistM, deltaM float64) (float64, []TuneResult, error) {
	best, results, err := s.inner.TuneCellSize(toInternal(trajs), sizes, sparseDistM, deltaM)
	if err != nil {
		return 0, nil, err
	}
	out := make([]TuneResult, len(results))
	for i, r := range results {
		out[i] = TuneResult{CellEdgeM: r.CellEdgeM, Recall: r.Recall, Precision: r.Precision}
	}
	return best, out, nil
}

// SaveModels persists the model repository under the work directory so a
// later process can impute without retraining.
func (s *System) SaveModels() error { return s.inner.SaveModels() }

// LoadModels restores a repository persisted by SaveModels.
func (s *System) LoadModels() error { return s.inner.LoadModels() }

// Validate reports problems in a trajectory before feeding it to the
// system: empty, or non-monotone timestamps.
func Validate(tr Trajectory) error {
	if len(tr.Points) == 0 {
		return fmt.Errorf("kamel: trajectory %q has no points", tr.ID)
	}
	for i := 1; i < len(tr.Points); i++ {
		a, b := tr.Points[i-1], tr.Points[i]
		if a.Time != 0 && b.Time != 0 && b.Time < a.Time {
			return fmt.Errorf("kamel: trajectory %q time goes backwards at point %d", tr.ID, i)
		}
	}
	return nil
}

// conversion helpers between the public mirror types and internal/geo.

func toInternalOne(tr Trajectory) geo.Trajectory {
	out := geo.Trajectory{ID: tr.ID, Points: make([]geo.Point, len(tr.Points))}
	for i, p := range tr.Points {
		out.Points[i] = geo.Point{Lat: p.Lat, Lng: p.Lng, T: p.Time}
	}
	return out
}

func toInternal(trs []Trajectory) []geo.Trajectory {
	out := make([]geo.Trajectory, len(trs))
	for i, tr := range trs {
		out[i] = toInternalOne(tr)
	}
	return out
}

func fromInternal(tr geo.Trajectory) Trajectory {
	out := Trajectory{ID: tr.ID, Points: make([]Point, len(tr.Points))}
	for i, p := range tr.Points {
		out.Points[i] = Point{Lat: p.Lat, Lng: p.Lng, Time: p.T}
	}
	return out
}

// ensure System satisfies the same imputer contract as the baselines.
var _ = baseline.Imputer(nil)

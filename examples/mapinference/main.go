// Map inference: the paper's motivating downstream application (§1).  KAMEL
// exists to densify trajectories *without* a road map, precisely so that a
// map can be inferred from them afterwards.  This example runs a simple
// occupancy-grid map inference over (a) raw sparse trajectories and (b) the
// same trajectories densified by KAMEL, and reports how much more of the
// true road network each recovers.
//
//	go run ./examples/mapinference
package main

import (
	"fmt"
	"log"
	"os"

	"kamel"
	"kamel/internal/geo"
	"kamel/internal/grid"
	"kamel/internal/roadnet"
	"kamel/internal/trajgen"
)

func main() {
	log.SetFlags(0)

	city := roadnet.DefaultCityConfig()
	city.Width, city.Height = 2000, 2000
	net := roadnet.GenerateCity(city)
	proj := geo.NewProjection(41.15, -8.61)
	gen := trajgen.DefaultConfig(100)
	trajs, err := trajgen.Generate(net, proj, gen)
	if err != nil {
		log.Fatal(err)
	}
	train, probeSet := trajgen.SplitTrainTest(trajs, 0.7, 1)

	workdir, err := os.MkdirTemp("", "kamel-mapinf-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(workdir)
	cfg := kamel.DefaultConfig(workdir)
	cfg.DisablePartitioning = true
	cfg.Train.Steps = 500
	sys, err := kamel.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	log.Printf("training on %d trajectories…", len(train))
	if err := sys.Train(toPublic(train)); err != nil {
		log.Fatal(err)
	}

	// Sparsify the probe set hard (1.5 km gaps), then impute it.
	var sparse, dense []geo.Trajectory
	for _, truth := range probeSet {
		sp := truth.Sparsify(1500)
		sparse = append(sparse, sp)
		d, _, err := sys.Impute(toPublicOne(sp))
		if err != nil {
			log.Fatal(err)
		}
		dense = append(dense, fromPublic(d))
	}

	// Occupancy-grid map inference: a 40 m cell is "road" when at least one
	// trajectory crosses it.  Compare coverage of the true network.
	g := grid.NewSquare(40)
	truthCells := roadCells(g, proj, net)
	sparseCov := coverage(g, proj, sparse, truthCells)
	denseCov := coverage(g, proj, dense, truthCells)

	fmt.Printf("\ntrue network: %d road cells (40 m occupancy grid)\n", len(truthCells))
	fmt.Printf("map inferred from sparse input: %5.1f%% of road cells recovered\n", 100*sparseCov)
	fmt.Printf("map inferred after KAMEL:       %5.1f%% of road cells recovered\n", 100*denseCov)
	if denseCov > sparseCov {
		fmt.Printf("\nKAMEL recovered %.1f%% more of the street network for the map inferencer.\n",
			100*(denseCov-sparseCov))
	}
}

// roadCells rasterizes the true network into grid cells.
func roadCells(g grid.Grid, proj *geo.Projection, net *roadnet.Network) map[grid.Cell]bool {
	out := make(map[grid.Cell]bool)
	for a, arcs := range net.Adj {
		for _, arc := range arcs {
			for _, c := range g.Line(g.CellAt(net.Pos[a]), g.CellAt(net.Pos[arc.To])) {
				out[c] = true
			}
		}
	}
	return out
}

// coverage returns the fraction of true road cells crossed by the
// trajectories.
func coverage(g grid.Grid, proj *geo.Projection, trajs []geo.Trajectory, truth map[grid.Cell]bool) float64 {
	seen := make(map[grid.Cell]bool)
	for _, tr := range trajs {
		xys := tr.XYs(proj)
		for i := 0; i+1 < len(xys); i++ {
			for _, c := range g.Line(g.CellAt(xys[i]), g.CellAt(xys[i+1])) {
				if truth[c] {
					seen[c] = true
				}
			}
		}
	}
	if len(truth) == 0 {
		return 0
	}
	return float64(len(seen)) / float64(len(truth))
}

func toPublicOne(tr geo.Trajectory) kamel.Trajectory {
	out := kamel.Trajectory{ID: tr.ID}
	for _, p := range tr.Points {
		out.Points = append(out.Points, kamel.Point{Lat: p.Lat, Lng: p.Lng, Time: p.T})
	}
	return out
}

func toPublic(trs []geo.Trajectory) []kamel.Trajectory {
	out := make([]kamel.Trajectory, len(trs))
	for i, tr := range trs {
		out[i] = toPublicOne(tr)
	}
	return out
}

func fromPublic(tr kamel.Trajectory) geo.Trajectory {
	out := geo.Trajectory{ID: tr.ID}
	for _, p := range tr.Points {
		out.Points = append(out.Points, geo.Point{Lat: p.Lat, Lng: p.Lng, T: p.Time})
	}
	return out
}

// Cell tuning: reproduces the accuracy-vs-cell-size trade-off of the
// paper's Figure 3(d) using the §3.2 auto-tuning module.  Both very small
// and very large hexagons hurt accuracy; the tuner finds the interior
// optimum for this dataset.
//
//	go run ./examples/celltuning
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"kamel"
	"kamel/internal/geo"
	"kamel/internal/roadnet"
	"kamel/internal/trajgen"
)

func main() {
	log.SetFlags(0)

	city := roadnet.DefaultCityConfig()
	city.Width, city.Height = 2000, 2000
	net := roadnet.GenerateCity(city)
	proj := geo.NewProjection(41.15, -8.61)
	trajs, err := trajgen.Generate(net, proj, trajgen.DefaultConfig(60))
	if err != nil {
		log.Fatal(err)
	}

	workdir, err := os.MkdirTemp("", "kamel-tune-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(workdir)
	cfg := kamel.DefaultConfig(workdir)
	cfg.Train.Steps = 300 // throwaway trial models
	sys, err := kamel.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	sizes := []float64{25, 50, 75, 125, 200, 300}
	log.Printf("tuning over cell sizes %v (this trains %d trial models)…", sizes, len(sizes))
	best, curve, err := sys.TuneCellSize(toPublic(trajs), sizes, 1000, 50)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\ncell edge (m)   recall   precision")
	for _, r := range curve {
		bar := strings.Repeat("█", int(r.Recall*40))
		fmt.Printf("%12.0f    %.3f    %.3f  %s\n", r.CellEdgeM, r.Recall, r.Precision, bar)
	}
	fmt.Printf("\nauto-tuned cell size: %.0f m (paper's tuned default: 75 m)\n", best)
}

func toPublic(trs []geo.Trajectory) []kamel.Trajectory {
	out := make([]kamel.Trajectory, len(trs))
	for i, tr := range trs {
		out[i] = kamel.Trajectory{ID: tr.ID}
		for _, p := range tr.Points {
			out[i].Points = append(out[i].Points, kamel.Point{Lat: p.Lat, Lng: p.Lng, Time: p.T})
		}
	}
	return out
}

// Streaming: KAMEL's online mode (paper §1 feature 4).  A producer feeds
// sparse trajectories into a channel as they "arrive"; a pool of workers
// imputes them concurrently and results stream out as they complete.
//
//	go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"kamel"
	"kamel/internal/geo"
	"kamel/internal/roadnet"
	"kamel/internal/trajgen"
)

func main() {
	log.SetFlags(0)

	city := roadnet.DefaultCityConfig()
	city.Width, city.Height = 2000, 2000
	net := roadnet.GenerateCity(city)
	proj := geo.NewProjection(41.15, -8.61)
	trajs, err := trajgen.Generate(net, proj, trajgen.DefaultConfig(70))
	if err != nil {
		log.Fatal(err)
	}
	train, incoming := trajgen.SplitTrainTest(trajs, 0.8, 1)

	workdir, err := os.MkdirTemp("", "kamel-stream-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(workdir)
	cfg := kamel.DefaultConfig(workdir)
	cfg.DisablePartitioning = true
	cfg.Train.Steps = 400
	sys, err := kamel.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	log.Printf("training on %d trajectories…", len(train))
	if err := sys.Train(toPublic(train)); err != nil {
		log.Fatal(err)
	}

	// Producer: sparse trajectories trickle in.
	in := make(chan kamel.Trajectory)
	go func() {
		defer close(in)
		for _, truth := range incoming {
			in <- toPublicOne(truth.Sparsify(1000))
			time.Sleep(50 * time.Millisecond) // simulated arrival pacing
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	start := time.Now()
	done := 0
	for res := range sys.ImputeStream(ctx, in, 2) {
		if res.Err != nil {
			log.Fatal(res.Err)
		}
		done++
		fmt.Printf("[%6.2fs] %s: %3d points imputed, %d/%d gaps failed\n",
			time.Since(start).Seconds(), res.Trajectory.ID,
			len(res.Trajectory.Points), res.Stats.Failures, res.Stats.Segments)
	}
	fmt.Printf("\nstream drained: %d trajectories imputed online\n", done)
}

func toPublicOne(tr geo.Trajectory) kamel.Trajectory {
	out := kamel.Trajectory{ID: tr.ID}
	for _, p := range tr.Points {
		out.Points = append(out.Points, kamel.Point{Lat: p.Lat, Lng: p.Lng, Time: p.T})
	}
	return out
}

func toPublic(trs []geo.Trajectory) []kamel.Trajectory {
	out := make([]kamel.Trajectory, len(trs))
	for i, tr := range trs {
		out[i] = toPublicOne(tr)
	}
	return out
}

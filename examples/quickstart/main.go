// Quickstart: train KAMEL on a small synthetic city and impute one sparse
// trajectory, printing the before/after point counts and the recovered
// shape.  Real deployments would feed their own GPS data; the synthetic city
// stands in for it (see DESIGN.md).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"kamel"
	"kamel/internal/geo"
	"kamel/internal/roadnet"
	"kamel/internal/trajgen"
)

func main() {
	log.SetFlags(0)

	// Synthesize a small city's traffic: 80 taxi-like trips with GPS noise.
	city := roadnet.DefaultCityConfig()
	city.Width, city.Height = 2000, 2000
	net := roadnet.GenerateCity(city)
	proj := geo.NewProjection(41.15, -8.61)
	gen := trajgen.DefaultConfig(80)
	trajs, err := trajgen.Generate(net, proj, gen)
	if err != nil {
		log.Fatal(err)
	}
	train, test := trajgen.SplitTrainTest(trajs, 0.9, 1)

	// Open a KAMEL system and train it.  Training is the offline phase: it
	// tokenizes trajectories onto the hexagonal grid, stores them, and
	// fits BERT models (paper §2).
	workdir, err := os.MkdirTemp("", "kamel-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(workdir)

	cfg := kamel.DefaultConfig(workdir)
	cfg.DisablePartitioning = true // one model: fastest to train
	cfg.Train.Steps = 500
	sys, err := kamel.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	log.Printf("training on %d trajectories…", len(train))
	if err := sys.Train(toPublic(train)); err != nil {
		log.Fatal(err)
	}
	st := sys.Stats()
	log.Printf("trained: %d models over %d tokens (inferred speed limit %.1f m/s)",
		st.SingleModels+st.NeighborModels, st.Tokens, st.MaxSpeedMPS)

	// Sparsify a held-out trajectory to 1 km gaps — the paper's default
	// evaluation protocol — and impute it.
	truth := test[0]
	sparse := truth.Sparsify(1000)
	dense, stats, err := sys.Impute(toPublicOne(sparse))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nground truth: %4d points over %.1f km\n", len(truth.Points), truth.LengthMeters()/1000)
	fmt.Printf("sparse input: %4d points (%d gaps)\n", len(sparse.Points), stats.Segments)
	fmt.Printf("imputed:      %4d points (%d/%d gaps failed to a straight line)\n",
		len(dense.Points), stats.Failures, stats.Segments)
	fmt.Println("\nfirst imputed points (lat, lng):")
	for i, p := range dense.Points {
		if i >= 8 {
			fmt.Println("  …")
			break
		}
		fmt.Printf("  %.5f, %.5f\n", p.Lat, p.Lng)
	}
}

func toPublicOne(tr geo.Trajectory) kamel.Trajectory {
	out := kamel.Trajectory{ID: tr.ID}
	for _, p := range tr.Points {
		out.Points = append(out.Points, kamel.Point{Lat: p.Lat, Lng: p.Lng, Time: p.T})
	}
	return out
}

func toPublic(trs []geo.Trajectory) []kamel.Trajectory {
	out := make([]kamel.Trajectory, len(trs))
	for i, tr := range trs {
		out[i] = toPublicOne(tr)
	}
	return out
}

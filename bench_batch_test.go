package kamel

// Benchmarks for the batched masked-prediction engine: the same 8-query beam
// frontier answered one PredictMasked call at a time versus one
// PredictMaskedBatch pass, and the full beam-search impute path on a trained
// reproduction-scale model with and without the batch engine.  Recorded
// numbers live in EXPERIMENTS.md.

import (
	"sync"
	"testing"

	"kamel/internal/bert"
	"kamel/internal/constraints"
	"kamel/internal/geo"
	"kamel/internal/grid"
	"kamel/internal/impute"
	"kamel/internal/roadnet"
	"kamel/internal/tokenizer"
	"kamel/internal/trajgen"
	"kamel/internal/vocab"
)

// batchBench holds a reproduction-scale model trained once per process.
type batchBench struct {
	model   *bert.Model
	v       *vocab.Vocab
	g       grid.Grid
	ch      *constraints.Checker
	req     impute.Request
	queries []bert.MaskQuery // an 8-candidate beam frontier
}

var (
	batchBenchOnce   sync.Once
	batchBenchShared *batchBench
)

func batchBenchFixture(b *testing.B) *batchBench {
	b.Helper()
	batchBenchOnce.Do(func() {
		city := roadnet.DefaultCityConfig()
		city.Width, city.Height = 1500, 1500
		net := roadnet.GenerateCity(city)
		proj := geo.NewProjection(41.15, -8.61)
		gen := trajgen.DefaultConfig(60)
		gen.GPSNoiseMeters = 3
		trajs, err := trajgen.Generate(net, proj, gen)
		if err != nil {
			panic(err)
		}

		g := grid.NewHex(75)
		v := vocab.New()
		var seqs [][]int
		for _, tr := range trajs {
			var ids []int
			var last grid.Cell = -1
			for _, p := range tr.Points {
				c := g.CellAt(proj.ToXY(p))
				if c == last {
					continue
				}
				last = c
				ids = append(ids, v.Add(c))
			}
			if len(ids) >= 2 {
				seqs = append(seqs, ids)
			}
		}

		m, err := bert.New(bert.DefaultConfig(v.Size()))
		if err != nil {
			panic(err)
		}
		tc := bert.DefaultTrainConfig()
		tc.Steps, tc.Batch = 220, 12
		if _, err := m.Train(seqs, tc); err != nil {
			panic(err)
		}

		// An 8-candidate frontier: windows of a real token sequence, each
		// with the mask at a different interior position — the shape of
		// Algorithm 2 expanding eight partial segments in one iteration.
		base := seqs[0]
		for len(base) < 16 {
			base = append(base, seqs[1]...)
		}
		queries := make([]bert.MaskQuery, 8)
		for i := range queries {
			w := append([]int{vocab.CLS}, base[i:i+6]...)
			w = append(w, vocab.SEP)
			w[1+i%5+1] = vocab.MASK
			queries[i] = bert.MaskQuery{Tokens: w, MaskPos: 1 + i%5 + 1, TopK: 20}
		}

		// One realistic multi-token gap for the end-to-end beam benchmarks.
		s := g.CellAt(geo.XY{X: 0, Y: 0})
		d := g.CellAt(geo.XY{X: 500, Y: 0})
		batchBenchShared = &batchBench{
			model:   m,
			v:       v,
			g:       g,
			ch:      constraints.NewChecker(tokenizer.NewFixed(g), 30),
			req:     impute.Request{S: s, D: d, TimeDiff: 50},
			queries: queries,
		}
	})
	return batchBenchShared
}

// BenchmarkPredictMaskedSequential answers the 8-query frontier with eight
// single-sequence forward passes (the pre-batching hot path).
func BenchmarkPredictMaskedSequential(b *testing.B) {
	f := batchBenchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range f.queries {
			if _, err := f.model.PredictMasked(q.Tokens, q.MaskPos, q.TopK); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkPredictMaskedBatch answers the same frontier in one batched
// engine pass; results are element-wise identical to the sequential path.
func BenchmarkPredictMaskedBatch(b *testing.B) {
	f := batchBenchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.model.PredictMaskedBatch(f.queries); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPredictor adapts the trained model to the impute layer the same way
// core's predictor does (segments here stay well under MaxSeqLen, so no
// windowing is needed).
type benchPredictor struct {
	m *bert.Model
	v *vocab.Vocab
}

func (p benchPredictor) maskQuery(segment []grid.Cell, gapPos, topK int) bert.MaskQuery {
	ids := make([]int, 0, len(segment)+3)
	ids = append(ids, vocab.CLS)
	maskIdx := -1
	for i, c := range segment {
		ids = append(ids, p.v.ID(c))
		if i == gapPos {
			maskIdx = len(ids)
			ids = append(ids, vocab.MASK)
		}
	}
	ids = append(ids, vocab.SEP)
	return bert.MaskQuery{Tokens: ids, MaskPos: maskIdx, TopK: topK + vocab.NumSpecial + 8}
}

func (p benchPredictor) filter(raw []bert.Candidate, topK int) []impute.Candidate {
	out := make([]impute.Candidate, 0, topK)
	for _, c := range raw {
		cell, ok := p.v.Cell(c.Token)
		if !ok {
			continue
		}
		out = append(out, impute.Candidate{Cell: cell, Prob: c.Prob})
		if len(out) == topK {
			break
		}
	}
	return out
}

func (p benchPredictor) Predict(segment []grid.Cell, gapPos int, topK int) ([]impute.Candidate, error) {
	mq := p.maskQuery(segment, gapPos, topK)
	raw, err := p.m.PredictMasked(mq.Tokens, mq.MaskPos, mq.TopK)
	if err != nil {
		return nil, err
	}
	return p.filter(raw, topK), nil
}

func (p benchPredictor) PredictBatch(queries []impute.Query) ([][]impute.Candidate, error) {
	mqs := make([]bert.MaskQuery, len(queries))
	for i, q := range queries {
		mqs[i] = p.maskQuery(q.Segment, q.GapPos, q.TopK)
	}
	raws, err := p.m.PredictMaskedBatch(mqs)
	if err != nil {
		return nil, err
	}
	out := make([][]impute.Candidate, len(queries))
	for i, raw := range raws {
		out[i] = p.filter(raw, queries[i].TopK)
	}
	return out, nil
}

// seqOnlyPredictor hides the batch path, forcing impute.AsBatch to fall back
// to sequential Predict calls — the pre-batching beam search.
type seqOnlyPredictor struct {
	p benchPredictor
}

func (s seqOnlyPredictor) Predict(segment []grid.Cell, gapPos int, topK int) ([]impute.Candidate, error) {
	return s.p.Predict(segment, gapPos, topK)
}

func (f *batchBench) imputeCfg() impute.Config {
	cfg := impute.DefaultConfig(tokenizer.NewFixed(f.g), f.ch)
	cfg.MaxGapMeters = 120
	cfg.MaxCalls = 150
	cfg.Beam = 6
	cfg.TopK = 40
	return cfg
}

// BenchmarkBeamImputeSequential runs Algorithm 2 end to end with one BERT
// call per frontier candidate.
func BenchmarkBeamImputeSequential(b *testing.B) {
	f := batchBenchFixture(b)
	p := seqOnlyPredictor{p: benchPredictor{m: f.model, v: f.v}}
	cfg := f.imputeCfg()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := impute.Beam(p, cfg, f.req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBeamImputeBatched runs the same search with each iteration's
// whole frontier answered by one PredictMaskedBatch pass.
func BenchmarkBeamImputeBatched(b *testing.B) {
	f := batchBenchFixture(b)
	p := benchPredictor{m: f.model, v: f.v}
	cfg := f.imputeCfg()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := impute.Beam(p, cfg, f.req); err != nil {
			b.Fatal(err)
		}
	}
}
